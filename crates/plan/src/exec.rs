//! Program execution: a table cache, single-op kernels and the staged
//! multi-program scheduler with per-stage cross-program coalescing.

use crate::program::{
    op_cost, tensor_fingerprint, EvalMode, GemmSparsity, Op, Operand, PoolKind, Precision, Program,
};
use onesa_cpwl::ops::{self, TableSet};
use onesa_cpwl::NonlinearFn;
use onesa_sim::{analytic, ArrayConfig, CycleBreakdown, ExecStats};
use onesa_tensor::parallel::{self, Parallelism};
use onesa_tensor::quant::{QuantTensor, QuantTensor8};
use onesa_tensor::sparse::SparseTensor;
use onesa_tensor::{im2col, Result, Tensor, TensorError};
use std::sync::Arc;

/// Lazily-built CPWL table sets keyed by granularity, shared across
/// programs (and across `BatchEngine` runs, which own one cache per
/// shard). Sets are `Arc`-shared, so seeding the cache with a set a
/// caller already holds (an `InferenceMode`'s, an engine's) is a
/// refcount bump, never a copy of the table data.
#[derive(Debug, Clone, Default)]
pub struct TableCache {
    sets: Vec<Arc<TableSet>>,
    builds: usize,
    /// Packed sparse weights keyed by `(weight fingerprint, block_cols)`
    /// so a sparse-attributed GEMM packs its constant once per cache,
    /// not once per run. `Arc`-shared like the table sets.
    packs: Vec<(u64, usize, Arc<SparseTensor>)>,
}

impl TableCache {
    /// An empty cache.
    pub fn new() -> Self {
        TableCache::default()
    }

    /// Adds an already-built set (no-op if its granularity is cached).
    pub fn seed(&mut self, set: TableSet) {
        self.seed_shared(Arc::new(set));
    }

    /// Adds an already-shared set without copying its tables (no-op if
    /// its granularity is cached) — the zero-copy path `onesa-nn`'s
    /// compiled-inference wrappers and `onesa-core`'s engines use.
    pub fn seed_shared(&mut self, set: Arc<TableSet>) {
        let bits = set.granularity().to_bits();
        if !self.sets.iter().any(|s| s.granularity().to_bits() == bits) {
            self.sets.push(set);
        }
    }

    /// The table set at `granularity`, building it on first use.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] if the table builder rejects the
    /// granularity.
    pub fn get(&mut self, granularity: f32) -> Result<&TableSet> {
        let bits = granularity.to_bits();
        if let Some(i) = self
            .sets
            .iter()
            .position(|s| s.granularity().to_bits() == bits)
        {
            return Ok(&self.sets[i]);
        }
        let set = TableSet::for_granularity(granularity)
            .map_err(|_| TensorError::InvalidArgument("invalid CPWL granularity"))?;
        self.builds += 1;
        self.sets.push(Arc::new(set));
        Ok(self.sets.last().expect("just pushed"))
    }

    /// Number of granularities cached (seeded or built).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the cache holds no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// How many table sets [`TableCache::get`] actually *built* (cache
    /// misses that were not satisfied by a seed). A serving engine that
    /// reuses its cache across batches reports a stable number here no
    /// matter how many runs it serves.
    pub fn builds(&self) -> usize {
        self.builds
    }

    /// The packed form of sparse-attributed GEMM weight `w` at
    /// `block_cols`, packing it on first use. Keyed by the weight's
    /// content fingerprint, so programs cloned from a cached compile
    /// (which share their consts) and even distinct programs with
    /// bit-identical weights all hit the same pack.
    pub(crate) fn packed(&mut self, w: &Tensor, block_cols: usize) -> Result<Arc<SparseTensor>> {
        let fp = tensor_fingerprint(w);
        if let Some((_, _, p)) = self
            .packs
            .iter()
            .find(|(f, b, _)| *f == fp && *b == block_cols)
        {
            return Ok(Arc::clone(p));
        }
        let packed = Arc::new(SparseTensor::from_dense(w, block_cols)?);
        self.packs.push((fp, block_cols, Arc::clone(&packed)));
        Ok(packed)
    }
}

/// One program's result from a (solo or staged) run.
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// The output tensor of the program's last op.
    pub output: Tensor,
    /// Values of the program's session-output slots (appended KV
    /// tensors), in [`Program::session_outputs`] order — empty for
    /// stateless programs. The serving layer writes these back to the
    /// owning session.
    pub session_outputs: Vec<Tensor>,
    /// Modeled solo [`ExecStats`] of every op, in stage order.
    pub op_stats: Vec<ExecStats>,
}

/// Coalescing accounting for one stage of a staged run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageGroups {
    /// Stage index (op position within each program).
    pub stage: usize,
    /// Ops that executed at this stage (one per program still running).
    pub ops: usize,
    /// Kernel groups they coalesced into (`groups < ops` means the
    /// stage shared weight loads or IPF passes across programs).
    pub groups: usize,
    /// Of those, groups that ran a GEMM kernel.
    pub gemm_groups: usize,
    /// Of those, groups that ran an IPF + MHP (nonlinear, softmax or
    /// layer-norm) pass.
    pub nonlinear_groups: usize,
}

/// Everything [`run_staged`] produces.
#[derive(Debug, Clone)]
pub struct StagedRun {
    /// Per-program outputs and op stats, in job order.
    pub runs: Vec<ProgramRun>,
    /// Per-stage coalescing accounting.
    pub stages: Vec<StageGroups>,
    /// Modeled array stats of the coalesced schedule actually executed.
    pub batched: ExecStats,
    /// Total GEMM kernel calls across all stages.
    pub gemm_groups: usize,
    /// Total IPF + MHP passes across all stages.
    pub nonlinear_groups: usize,
}

/// Per-job runtime state.
struct JobState<'a> {
    program: &'a Program,
    /// Inputs first, then one slot per executed op.
    slots: Vec<Option<Tensor>>,
    op_stats: Vec<ExecStats>,
}

impl JobState<'_> {
    fn resolve(&self, operand: Operand) -> &Tensor {
        match operand {
            Operand::Slot(s) => self.slots[s].as_ref().expect("slot written before read"),
            Operand::Const(c) => self.program.consts()[c].as_ref(),
        }
    }
}

/// How a stage member coalesces with its peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKey {
    /// GEMM against a shared constant right operand: row-stack.
    GemmRight(u64),
    /// GEMM with a shared constant left operand: column-stack.
    GemmLeft(u64),
    /// Pointwise nonlinear sharing (function, eval mode): concatenate.
    Nonlinear(u64),
    /// Row-wise softmax sharing (eval mode, width): row-stack.
    Softmax(u64, usize),
    /// Row-wise layer-norm sharing (eval mode, γ/β/ε, width): row-stack.
    LayerNorm(u64, usize),
    /// Everything else executes per program.
    Solo(usize),
}

/// Executes `jobs` — `(program, inputs)` pairs — stage by stage,
/// coalescing compatible ops across programs at every stage. Outputs
/// are bit-identical to running each program alone (row stacking,
/// column stacking and concatenation never change an element's
/// floating-point op sequence), which is what lets `onesa_core`'s
/// engines schedule whole networks the way they batch single GEMMs.
///
/// # Errors
///
/// Validation errors from any program, input-shape mismatches, kernel
/// shape errors, or table-construction failures.
pub fn run_staged(
    jobs: &[(&Program, &[Tensor])],
    cfg: &ArrayConfig,
    par: Parallelism,
    tables: &mut TableCache,
) -> Result<StagedRun> {
    let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
    for (program, inputs) in jobs {
        program.validate()?;
        if inputs.len() != program.n_inputs() {
            return Err(TensorError::InvalidArgument("program input count mismatch"));
        }
        for (t, expect) in inputs.iter().zip(program.input_shapes()) {
            if t.dims() != expect.as_slice() {
                return Err(TensorError::ShapeMismatch {
                    lhs: t.dims().to_vec(),
                    rhs: expect.clone(),
                    op: "plan::run_staged input",
                });
            }
        }
        let mut slots: Vec<Option<Tensor>> = vec![None; program.n_inputs() + program.stages()];
        for (i, t) in inputs.iter().enumerate() {
            slots[i] = Some(t.clone());
        }
        states.push(JobState {
            program,
            slots,
            op_stats: Vec::with_capacity(program.stages()),
        });
    }

    let max_stages = states.iter().map(|s| s.program.stages()).max().unwrap_or(0);
    let mut stages: Vec<StageGroups> = Vec::with_capacity(max_stages);
    let mut batched = ExecStats::new(cfg, CycleBreakdown::default(), 0, 0);
    let (mut total_gemm, mut total_nl) = (0usize, 0usize);

    for stage in 0..max_stages {
        // Members: every job whose program still has an op at this stage.
        let members: Vec<usize> = (0..states.len())
            .filter(|&j| stage < states[j].program.stages())
            .collect();

        // Group members by coalescing key (first-seen order), verifying
        // exact equality of shared constants/parameters behind the hash.
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for &j in &members {
            let node = &states[j].program.nodes()[stage];
            let key = member_key(&states[j], stage);
            let slot = groups
                .iter_mut()
                .find(|(k, ids)| *k == key && keys_truly_equal(&states, stage, ids[0], j, node));
            match slot {
                Some((_, ids)) => ids.push(j),
                None => groups.push((key, vec![j])),
            }
        }

        let (mut stage_gemm, mut stage_nl) = (0usize, 0usize);
        for (key, ids) in &groups {
            let produced = exec_group(key, ids, &states, stage, cfg, par, tables)?;
            match key {
                GroupKey::GemmRight(_) | GroupKey::GemmLeft(_) => stage_gemm += 1,
                GroupKey::Nonlinear(_) | GroupKey::Softmax(..) | GroupKey::LayerNorm(..) => {
                    stage_nl += 1
                }
                GroupKey::Solo(_) => {
                    if matches!(states[ids[0]].program.nodes()[stage].op, Op::Gemm { .. }) {
                        stage_gemm += 1;
                    }
                }
            }
            batched = batched.merged(&produced.batched);
            for (j, out, solo) in produced.outputs {
                let out_slot = states[j].program.n_inputs() + stage;
                states[j].slots[out_slot] = Some(out);
                states[j].op_stats.push(solo);
            }
        }
        total_gemm += stage_gemm;
        total_nl += stage_nl;
        stages.push(StageGroups {
            stage,
            ops: members.len(),
            groups: groups.len(),
            gemm_groups: stage_gemm,
            nonlinear_groups: stage_nl,
        });
    }

    let runs = states
        .into_iter()
        .map(|s| {
            let out_slot = s.program.n_inputs() + s.program.stages() - 1;
            let session_outputs = s
                .program
                .session_outputs()
                .iter()
                .map(|&slot| s.slots[slot].clone().expect("session slot executed"))
                .collect();
            ProgramRun {
                output: s.slots[out_slot].clone().expect("program executed"),
                session_outputs,
                op_stats: s.op_stats,
            }
        })
        .collect();
    Ok(StagedRun {
        runs,
        stages,
        batched,
        gemm_groups: total_gemm,
        nonlinear_groups: total_nl,
    })
}

/// The coalescing key of job `j`'s op at `stage`.
fn member_key(state: &JobState, stage: usize) -> GroupKey {
    let node = &state.program.nodes()[stage];
    let mode = state.program.mode().coalesce_key();
    match &node.op {
        Op::Gemm { sparsity, .. } => match (node.inputs[0], node.inputs[1]) {
            (Operand::Slot(_), Operand::Const(c)) => {
                // Mix the sparsity attribute into the key: a sparse and
                // a dense GEMM over the same weight run different
                // kernels and must never coalesce into one group.
                let mut h = tensor_fingerprint(&state.program.consts()[c]);
                if let Some(s) = sparsity {
                    for v in [1, s.block_cols, s.nnz_blocks, s.total_blocks, s.nnz_cols] {
                        h = crate::program::fnv_u64(h, v as u64);
                    }
                }
                GroupKey::GemmRight(h)
            }
            (Operand::Const(c), Operand::Slot(_)) => {
                GroupKey::GemmLeft(tensor_fingerprint(&state.program.consts()[c]))
            }
            _ => GroupKey::Solo(usize::MAX),
        },
        Op::Nonlinear(func) => GroupKey::Nonlinear(mode ^ func_hash(*func)),
        Op::Softmax => {
            let n = state.resolve(node.inputs[0]).dims()[1];
            GroupKey::Softmax(mode, n)
        }
        Op::LayerNorm { gamma, beta, eps } => {
            let mut h = mode;
            for v in gamma.iter().chain(beta).chain(std::iter::once(eps)) {
                h = crate::program::fnv_u64(h, u64::from(v.to_bits()));
            }
            let n = state.resolve(node.inputs[0]).dims()[1];
            GroupKey::LayerNorm(h, n)
        }
        _ => GroupKey::Solo(usize::MAX),
    }
}

/// `Solo(usize::MAX)` keys must never merge two members; hashed keys
/// verify the underlying constants/parameters match exactly.
fn keys_truly_equal(
    states: &[JobState],
    stage: usize,
    first: usize,
    candidate: usize,
    node: &crate::program::OpNode,
) -> bool {
    let a = &states[first].program.nodes()[stage];
    match (&a.op, &node.op) {
        (Op::Gemm { sparsity: s1, .. }, Op::Gemm { sparsity: s2, .. }) => {
            if s1 != s2 {
                return false;
            }
            let const_of = |j: usize| -> Option<&Tensor> {
                let n = &states[j].program.nodes()[stage];
                n.inputs.iter().find_map(|op| match *op {
                    Operand::Const(c) => Some(states[j].program.consts()[c].as_ref()),
                    Operand::Slot(_) => None,
                })
            };
            match (const_of(first), const_of(candidate)) {
                (Some(x), Some(y)) => same_tensor(x, y),
                _ => false,
            }
        }
        (Op::Nonlinear(f), Op::Nonlinear(g)) => f == g,
        (Op::Softmax, Op::Softmax) => true,
        (
            Op::LayerNorm { gamma, beta, eps },
            Op::LayerNorm {
                gamma: g2,
                beta: b2,
                eps: e2,
            },
        ) => same_f32s(gamma, g2) && same_f32s(beta, b2) && eps.to_bits() == e2.to_bits(),
        _ => false,
    }
}

fn same_tensor(x: &Tensor, y: &Tensor) -> bool {
    x.dims() == y.dims()
        && x.as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

fn same_f32s(x: &[f32], y: &[f32]) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
}

fn func_hash(func: NonlinearFn) -> u64 {
    let mut h = crate::program::FNV_OFFSET;
    for byte in format!("{func:?}").bytes() {
        h = crate::program::fnv_u64(h, u64::from(byte));
    }
    h
}

/// What one group execution produces.
struct GroupOut {
    /// `(job, output, solo stats)` per member.
    outputs: Vec<(usize, Tensor, ExecStats)>,
    /// Modeled stats of the one coalesced kernel this group ran.
    batched: ExecStats,
}

fn solo_cost(state: &JobState, stage: usize, cfg: &ArrayConfig, out_dims: &[usize]) -> ExecStats {
    let node = &state.program.nodes()[stage];
    let in0 = state.resolve(node.inputs[0]).dims().to_vec();
    op_cost(&node.op, &in0, out_dims, cfg)
}

fn exec_group(
    key: &GroupKey,
    ids: &[usize],
    states: &[JobState],
    stage: usize,
    cfg: &ArrayConfig,
    par: Parallelism,
    tables: &mut TableCache,
) -> Result<GroupOut> {
    match key {
        GroupKey::GemmRight(_) => {
            // Row-stack every member's left operand against the shared
            // weights: one tall GEMM, then slice each member's rows back
            // out and apply its bias (bit-identical: each output element
            // is an independent dot product plus its own bias add).
            let b = gemm_const(&states[ids[0]], stage);
            let sparsity = gemm_sparsity(&states[ids[0]], stage);
            let (k, n) = (b.dims()[0], b.dims()[1]);
            let mut stacked = Vec::new();
            let mut row_counts = Vec::with_capacity(ids.len());
            for &j in ids {
                let a = states[j].resolve(states[j].program.nodes()[stage].inputs[0]);
                stacked.extend_from_slice(a.as_slice());
                row_counts.push(a.dims()[0]);
            }
            let total_m: usize = row_counts.iter().sum();
            let tall = Tensor::from_vec(stacked, &[total_m, k])?;
            let product = match sparsity {
                Some(s) => {
                    let packed = tables.packed(b, s.block_cols)?;
                    onesa_tensor::sparse::matmul(&tall, &packed, par)?
                }
                None => parallel::matmul(&tall, b, par)?,
            };
            let batched = gemm_credit(cfg, total_m, k, n, sparsity);
            let mut outputs = Vec::with_capacity(ids.len());
            let mut row0 = 0usize;
            for (&j, &m) in ids.iter().zip(&row_counts) {
                let mut rows = product.as_slice()[row0 * n..(row0 + m) * n].to_vec();
                row0 += m;
                apply_bias(&mut rows, m, n, gemm_bias(&states[j], stage));
                let out = Tensor::from_vec(rows, &[m, n])?;
                let solo = gemm_credit(cfg, m, k, n, sparsity);
                outputs.push((j, out, solo));
            }
            Ok(GroupOut { outputs, batched })
        }
        GroupKey::GemmLeft(_) => {
            // Column-stack every member's right operand behind the
            // shared left matrix (a GCN's Â): one wide GEMM, sliced back
            // per member (output columns are independent dot products).
            let a = gemm_const(&states[ids[0]], stage);
            let (m, k) = (a.dims()[0], a.dims()[1]);
            let col_counts: Vec<usize> = ids
                .iter()
                .map(|&j| {
                    states[j]
                        .resolve(states[j].program.nodes()[stage].inputs[1])
                        .dims()[1]
                })
                .collect();
            let total_n: usize = col_counts.iter().sum();
            let mut combined = vec![0.0f32; k * total_n];
            for r in 0..k {
                let mut off = 0usize;
                for (&j, &nj) in ids.iter().zip(&col_counts) {
                    let bj = states[j].resolve(states[j].program.nodes()[stage].inputs[1]);
                    combined[r * total_n + off..r * total_n + off + nj]
                        .copy_from_slice(&bj.as_slice()[r * nj..(r + 1) * nj]);
                    off += nj;
                }
            }
            let wide = Tensor::from_vec(combined, &[k, total_n])?;
            let product = parallel::matmul(a, &wide, par)?;
            let batched = analytic::gemm_stats(cfg, m, k, total_n);
            let mut outputs = Vec::with_capacity(ids.len());
            let mut off = 0usize;
            for (&j, &nj) in ids.iter().zip(&col_counts) {
                let mut vals = vec![0.0f32; m * nj];
                for r in 0..m {
                    vals[r * nj..(r + 1) * nj].copy_from_slice(
                        &product.as_slice()[r * total_n + off..r * total_n + off + nj],
                    );
                }
                off += nj;
                apply_bias(&mut vals, m, nj, gemm_bias(&states[j], stage));
                let out = Tensor::from_vec(vals, &[m, nj])?;
                outputs.push((j, out, analytic::gemm_stats(cfg, m, k, nj)));
            }
            Ok(GroupOut { outputs, batched })
        }
        GroupKey::Nonlinear(_) => {
            // Concatenate every member's elements into one row: one IPF
            // + MHP pass (or one exact elementwise map) shared by the
            // whole group.
            let Op::Nonlinear(func) = states[ids[0]].program.nodes()[stage].op else {
                unreachable!("nonlinear group holds nonlinear ops")
            };
            let mut flat = Vec::new();
            let mut dims: Vec<Vec<usize>> = Vec::with_capacity(ids.len());
            for &j in ids {
                let x = states[j].resolve(states[j].program.nodes()[stage].inputs[0]);
                flat.extend_from_slice(x.as_slice());
                dims.push(x.dims().to_vec());
            }
            let total = flat.len();
            let joined = Tensor::from_vec(flat, &[1, total])?;
            let evaluated = match states[ids[0]].program.mode() {
                EvalMode::Exact => joined.map(|v| func.eval(v)),
                EvalMode::Cpwl { granularity, .. } => {
                    let table = tables
                        .get(granularity)?
                        .table(func)
                        .ok_or(TensorError::InvalidArgument("function not in table set"))?;
                    let ipf = table.ipf(&joined);
                    parallel::mhp(&joined, &ipf.k, &ipf.b, par)?
                }
            };
            let batched = analytic::nonlinear_stats(cfg, 1, total);
            let mut outputs = Vec::with_capacity(ids.len());
            let mut off = 0usize;
            for (&j, d) in ids.iter().zip(&dims) {
                let len: usize = d.iter().product();
                let vals = evaluated.as_slice()[off..off + len].to_vec();
                off += len;
                let out = Tensor::from_vec(vals, d)?;
                let solo = solo_cost(&states[j], stage, cfg, d);
                outputs.push((j, out, solo));
            }
            Ok(GroupOut { outputs, batched })
        }
        GroupKey::Softmax(_, n) => {
            let stacked = stack_rows(states, ids, stage)?;
            let total_m = stacked.dims()[0];
            let result = match states[ids[0]].program.mode() {
                EvalMode::Exact => ops::softmax_rows_exact(&stacked).map_err(unwrap_cpwl)?,
                EvalMode::Cpwl { granularity, .. } => tables
                    .get(granularity)?
                    .softmax_rows(&stacked)
                    .map_err(unwrap_cpwl)?,
            };
            split_rows(
                states,
                ids,
                stage,
                &result,
                *n,
                analytic::softmax_stats(cfg, total_m, *n),
                cfg,
            )
        }
        GroupKey::LayerNorm(_, n) => {
            let Op::LayerNorm { gamma, beta, eps } = &states[ids[0]].program.nodes()[stage].op
            else {
                unreachable!("layer-norm group holds layer-norm ops")
            };
            let stacked = stack_rows(states, ids, stage)?;
            let total_m = stacked.dims()[0];
            let result = match states[ids[0]].program.mode() {
                EvalMode::Exact => {
                    ops::layernorm_rows_exact(&stacked, gamma, beta, *eps).map_err(unwrap_cpwl)?
                }
                EvalMode::Cpwl { granularity, .. } => tables
                    .get(granularity)?
                    .layernorm_rows(&stacked, gamma, beta, *eps)
                    .map_err(unwrap_cpwl)?,
            };
            split_rows(
                states,
                ids,
                stage,
                &result,
                *n,
                analytic::norm_stats(cfg, total_m, *n),
                cfg,
            )
        }
        GroupKey::Solo(_) => {
            let j = ids[0];
            let state = &states[j];
            let node = &state.program.nodes()[stage];
            let ins: Vec<&Tensor> = node.inputs.iter().map(|&op| state.resolve(op)).collect();
            let out = exec_single(&node.op, &ins, state.program.mode(), par, tables)?;
            let solo = solo_cost(state, stage, cfg, out.dims());
            let batched = solo.clone();
            Ok(GroupOut {
                outputs: vec![(j, out, solo)],
                batched,
            })
        }
    }
}

/// The constant operand of a coalesced GEMM group member.
fn gemm_const<'a>(state: &'a JobState, stage: usize) -> &'a Tensor {
    let node = &state.program.nodes()[stage];
    node.inputs
        .iter()
        .find_map(|op| match *op {
            Operand::Const(c) => Some(state.program.consts()[c].as_ref()),
            Operand::Slot(_) => None,
        })
        .expect("coalesced gemm group has a constant operand")
}

fn gemm_bias<'a>(state: &'a JobState, stage: usize) -> Option<&'a [f32]> {
    match &state.program.nodes()[stage].op {
        Op::Gemm { bias, .. } => bias.as_deref(),
        _ => unreachable!("gemm group holds gemm ops"),
    }
}

fn gemm_sparsity(state: &JobState, stage: usize) -> Option<GemmSparsity> {
    match &state.program.nodes()[stage].op {
        Op::Gemm { sparsity, .. } => *sparsity,
        _ => unreachable!("gemm group holds gemm ops"),
    }
}

/// Modeled GEMM stats with sparse credit — the same crediting rule as
/// `op_cost`, so solo and coalesced runs agree with `modeled_macs`.
fn gemm_credit(
    cfg: &ArrayConfig,
    m: usize,
    k: usize,
    n: usize,
    sparsity: Option<GemmSparsity>,
) -> ExecStats {
    match sparsity {
        Some(s) if s.nnz_cols == 0 => ExecStats::new(cfg, CycleBreakdown::default(), 0, 0),
        Some(s) => analytic::gemm_stats(cfg, m, k, s.nnz_cols),
        None => analytic::gemm_stats(cfg, m, k, n),
    }
}

fn apply_bias(vals: &mut [f32], m: usize, n: usize, bias: Option<&[f32]>) {
    if let Some(b) = bias {
        for i in 0..m {
            let row = &mut vals[i * n..(i + 1) * n];
            for (j, v) in row.iter_mut().enumerate() {
                *v += b[j];
            }
        }
    }
}

fn stack_rows(states: &[JobState], ids: &[usize], stage: usize) -> Result<Tensor> {
    let mut stacked = Vec::new();
    let mut total_m = 0usize;
    let mut n = 0usize;
    for &j in ids {
        let x = states[j].resolve(states[j].program.nodes()[stage].inputs[0]);
        stacked.extend_from_slice(x.as_slice());
        total_m += x.dims()[0];
        n = x.dims()[1];
    }
    Tensor::from_vec(stacked, &[total_m, n])
}

#[allow(clippy::too_many_arguments)]
fn split_rows(
    states: &[JobState],
    ids: &[usize],
    stage: usize,
    result: &Tensor,
    n: usize,
    batched: ExecStats,
    cfg: &ArrayConfig,
) -> Result<GroupOut> {
    let mut outputs = Vec::with_capacity(ids.len());
    let mut row0 = 0usize;
    for &j in ids {
        let m = states[j]
            .resolve(states[j].program.nodes()[stage].inputs[0])
            .dims()[0];
        let vals = result.as_slice()[row0 * n..(row0 + m) * n].to_vec();
        row0 += m;
        let out = Tensor::from_vec(vals, &[m, n])?;
        let solo = solo_cost(&states[j], stage, cfg, &[m, n]);
        outputs.push((j, out, solo));
    }
    Ok(GroupOut { outputs, batched })
}

/// Executes one op on resolved inputs — the un-coalesced path, kept
/// op-for-op identical to the direct model code it replaces (see
/// `onesa-nn`'s `*_direct` reference implementations).
fn exec_single(
    op: &Op,
    ins: &[&Tensor],
    mode: EvalMode,
    par: Parallelism,
    tables: &mut TableCache,
) -> Result<Tensor> {
    match op {
        Op::Gemm { bias, sparsity } => {
            let mut y = match sparsity {
                Some(s) => {
                    let packed = tables.packed(ins[1], s.block_cols)?;
                    onesa_tensor::sparse::matmul(ins[0], &packed, par)?
                }
                None => parallel::matmul(ins[0], ins[1], par)?,
            };
            let (m, n) = y.shape().as_matrix()?;
            apply_bias(y.as_mut_slice(), m, n, bias.as_deref());
            Ok(y)
        }
        Op::Nonlinear(func) => match mode {
            EvalMode::Exact => Ok(ins[0].map(|v| func.eval(v))),
            EvalMode::Cpwl { granularity, .. } => {
                let table = tables
                    .get(granularity)?
                    .table(*func)
                    .ok_or(TensorError::InvalidArgument("function not in table set"))?;
                table.eval_tensor(ins[0]).map_err(unwrap_cpwl)
            }
        },
        Op::Softmax => match mode {
            EvalMode::Exact => ops::softmax_rows_exact(ins[0]).map_err(unwrap_cpwl),
            EvalMode::Cpwl { granularity, .. } => tables
                .get(granularity)?
                .softmax_rows(ins[0])
                .map_err(unwrap_cpwl),
        },
        Op::LayerNorm { gamma, beta, eps } => match mode {
            EvalMode::Exact => {
                ops::layernorm_rows_exact(ins[0], gamma, beta, *eps).map_err(unwrap_cpwl)
            }
            EvalMode::Cpwl { granularity, .. } => tables
                .get(granularity)?
                .layernorm_rows(ins[0], gamma, beta, *eps)
                .map_err(unwrap_cpwl),
        },
        Op::Im2col(geo) => im2col::im2col(ins[0], geo),
        Op::Col2im { channels, oh, ow } => im2col::col2im_output(ins[0], *channels, *oh, *ow),
        Op::Add => ins[0].add(ins[1]),
        Op::Affine { k, b } => {
            let dims = ins[0].dims();
            let (c, h, w) = (dims[0], dims[1], dims[2]);
            let mut y = ins[0].clone();
            for ch in 0..c {
                for v in &mut y.as_mut_slice()[ch * h * w..(ch + 1) * h * w] {
                    *v = *v * k[ch] + b[ch];
                }
            }
            Ok(y)
        }
        Op::AffineNonlinear { k, b, func } => {
            // One MHP pass: the IPF stage indexes the table on the
            // affine output t = k·x + b and folds (k, b) into the
            // fetched segment parameters, so the array evaluates
            // f(k·x + b) as a single x ⊙ k' + b' sweep.
            let dims = ins[0].dims();
            let (c, h, w) = (dims[0], dims[1], dims[2]);
            let mut t = ins[0].clone();
            for ch in 0..c {
                for v in &mut t.as_mut_slice()[ch * h * w..(ch + 1) * h * w] {
                    *v = *v * k[ch] + b[ch];
                }
            }
            match mode {
                EvalMode::Exact => Ok(t.map(|v| func.eval(v))),
                EvalMode::Cpwl { granularity, .. } => {
                    let table = tables
                        .get(granularity)?
                        .table(*func)
                        .ok_or(TensorError::InvalidArgument("function not in table set"))?;
                    let ipf = table.ipf(&t);
                    let mut kk = ipf.k;
                    let mut bb = ipf.b;
                    for ch in 0..c {
                        for i in ch * h * w..(ch + 1) * h * w {
                            let seg_k = kk.as_slice()[i];
                            kk.as_mut_slice()[i] = seg_k * k[ch];
                            bb.as_mut_slice()[i] += seg_k * b[ch];
                        }
                    }
                    parallel::mhp(ins[0], &kk, &bb, par)
                }
            }
        }
        Op::Scale(f) => Ok(ins[0].scale(*f)),
        Op::Transpose => ins[0].transpose(),
        Op::SliceCols { start, len } => {
            let (m, n) = ins[0].shape().as_matrix()?;
            let mut out = Tensor::zeros(&[m, *len]);
            for i in 0..m {
                for j in 0..*len {
                    out.as_mut_slice()[i * len + j] = ins[0].as_slice()[i * n + start + j];
                }
            }
            Ok(out)
        }
        Op::ConcatCols => {
            // Accumulate into zeros exactly like the attention layer's
            // head_write (`+=` into a zero matrix), so merged heads are
            // bit-identical to the direct path.
            let (m, _) = ins[0].shape().as_matrix()?;
            let total: usize = ins.iter().map(|t| t.dims()[1]).sum();
            let mut out = Tensor::zeros(&[m, total]);
            let mut off = 0usize;
            for part in ins {
                let ni = part.dims()[1];
                for i in 0..m {
                    for j in 0..ni {
                        out.as_mut_slice()[i * total + off + j] += part.as_slice()[i * ni + j];
                    }
                }
                off += ni;
            }
            Ok(out)
        }
        Op::Pool(PoolKind::GlobalAvg) => {
            let dims = ins[0].dims();
            let (c, h, w) = (dims[0], dims[1], dims[2]);
            let pooled: Vec<f32> = (0..c)
                .map(|ch| {
                    ins[0].as_slice()[ch * h * w..(ch + 1) * h * w]
                        .iter()
                        .sum::<f32>()
                        / (h * w) as f32
                })
                .collect();
            Tensor::from_vec(pooled, &[1, c])
        }
        Op::Pool(PoolKind::MeanRows) => {
            let (l, d) = ins[0].shape().as_matrix()?;
            let mut pooled = Tensor::zeros(&[1, d]);
            for i in 0..l {
                for j in 0..d {
                    pooled.as_mut_slice()[j] += ins[0].as_slice()[i * d + j] / l as f32;
                }
            }
            Ok(pooled)
        }
        Op::Quantize { precision } => Ok(match precision {
            Precision::Int16 => QuantTensor::quantize(ins[0]).dequantize(),
            Precision::Int8 => QuantTensor8::quantize(ins[0]).dequantize(),
        }),
        Op::QuantizeRows => {
            // Each row round-trips through INT16 with its own scale, so
            // the result for row i is a pure function of row i — the
            // row-decomposability the KV-cache decode path relies on.
            let (m, n) = ins[0].shape().as_matrix()?;
            let mut out = Tensor::zeros(&[m, n]);
            for i in 0..m {
                let row =
                    Tensor::from_vec(ins[0].as_slice()[i * n..(i + 1) * n].to_vec(), &[1, n])?;
                let q = QuantTensor::quantize(&row).dequantize();
                out.as_mut_slice()[i * n..(i + 1) * n].copy_from_slice(q.as_slice());
            }
            Ok(out)
        }
        Op::Embed => {
            let (_, l) = ins[0].shape().as_matrix()?;
            let d = ins[1].dims()[1];
            let mut out = Tensor::zeros(&[l, d]);
            for i in 0..l {
                let id = ins[0].as_slice()[i] as usize;
                let tok = ins[1].row(id)?;
                let pos = ins[2].row(i)?;
                let row = out.row_mut(i)?;
                for j in 0..d {
                    row[j] = tok[j] + pos[j];
                }
            }
            Ok(out)
        }
        Op::EmbedAt { offset } => {
            let (_, l) = ins[0].shape().as_matrix()?;
            let d = ins[1].dims()[1];
            let mut out = Tensor::zeros(&[l, d]);
            for i in 0..l {
                let id = ins[0].as_slice()[i] as usize;
                let tok = ins[1].row(id)?;
                let pos = ins[2].row(offset + i)?;
                let row = out.row_mut(i)?;
                for j in 0..d {
                    row[j] = tok[j] + pos[j];
                }
            }
            Ok(out)
        }
        Op::ConcatRows => {
            let (_, n) = ins[0].shape().as_matrix()?;
            let total: usize = ins.iter().map(|t| t.dims()[0]).sum();
            let mut vals = Vec::with_capacity(total * n);
            for part in ins {
                vals.extend_from_slice(part.as_slice());
            }
            Tensor::from_vec(vals, &[total, n])
        }
        Op::CausalSoftmax { offset } => {
            // Row i softmaxes its visible prefix `0 ..= offset + i`
            // through the SAME row-softmax routine a plain `Op::Softmax`
            // over that prefix would use, and writes exact 0.0 beyond it
            // — so a prefill's row is bit-identical to a later decode
            // step's full-row softmax at the same context length.
            let (m, n) = ins[0].shape().as_matrix()?;
            let mut out = Tensor::zeros(&[m, n]);
            for i in 0..m {
                let visible = offset + i + 1;
                let prefix = Tensor::from_vec(
                    ins[0].as_slice()[i * n..i * n + visible].to_vec(),
                    &[1, visible],
                )?;
                let soft = match mode {
                    EvalMode::Exact => ops::softmax_rows_exact(&prefix).map_err(unwrap_cpwl)?,
                    EvalMode::Cpwl { granularity, .. } => tables
                        .get(granularity)?
                        .softmax_rows(&prefix)
                        .map_err(unwrap_cpwl)?,
                };
                out.as_mut_slice()[i * n..i * n + visible].copy_from_slice(soft.as_slice());
            }
            Ok(out)
        }
    }
}

fn unwrap_cpwl(e: onesa_cpwl::CpwlError) -> TensorError {
    match e {
        onesa_cpwl::CpwlError::Tensor(t) => t,
        onesa_cpwl::CpwlError::InvalidGranularity(_) => {
            TensorError::InvalidArgument("invalid granularity")
        }
        onesa_cpwl::CpwlError::InvalidRange { .. } => TensorError::InvalidArgument("invalid range"),
        _ => TensorError::InvalidArgument("cpwl table error"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use onesa_tensor::gemm;
    use onesa_tensor::rng::Pcg32;

    fn cpwl() -> EvalMode {
        EvalMode::Cpwl {
            granularity: 0.25,
            quantize: false,
        }
    }

    fn mlp(mode: EvalMode, w1: &Tensor, w2: &Tensor) -> Program {
        let mut b = Program::builder("mlp", mode);
        let x = b.input(&[3, 6]);
        let (w1, w2) = (b.constant(w1.clone()), b.constant(w2.clone()));
        let h = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w1],
        );
        let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[g, w2],
        );
        b.finish().unwrap()
    }

    #[test]
    fn solo_run_matches_hand_computation() {
        let mut rng = Pcg32::seed_from_u64(1);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let x = rng.randn(&[3, 6], 1.0);
        let tables = TableSet::for_granularity(0.25).unwrap();
        for mode in [EvalMode::Exact, cpwl()] {
            let p = mlp(mode, &w1, &w2);
            let run = p
                .run(
                    std::slice::from_ref(&x),
                    Parallelism::Sequential,
                    &mut TableCache::new(),
                )
                .unwrap();
            let h = gemm::matmul(&x, &w1).unwrap();
            let g = match mode {
                EvalMode::Exact => h.map(|v| NonlinearFn::Gelu.eval(v)),
                EvalMode::Cpwl { .. } => tables.gelu(&h).unwrap(),
            };
            let expect = gemm::matmul(&g, &w2).unwrap();
            assert_eq!(run.output, expect, "{mode:?}");
            assert_eq!(run.op_stats.len(), 3);
        }
    }

    #[test]
    fn staged_runs_coalesce_across_programs_at_every_stage() {
        let mut rng = Pcg32::seed_from_u64(2);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let xs: Vec<Tensor> = (0..3).map(|_| rng.randn(&[3, 6], 1.0)).collect();
        let p = mlp(cpwl(), &w1, &w2);
        let cfg = ArrayConfig::new(8, 16);
        let mut cache = TableCache::new();

        // Solo references.
        let solos: Vec<Tensor> = xs
            .iter()
            .map(|x| {
                p.run(std::slice::from_ref(x), Parallelism::Sequential, &mut cache)
                    .unwrap()
                    .output
            })
            .collect();

        // Concurrent staged run: every stage coalesces 3 ops -> 1 group.
        let jobs: Vec<(&Program, &[Tensor])> =
            xs.iter().map(|x| (&p, std::slice::from_ref(x))).collect();
        let staged = run_staged(&jobs, &cfg, Parallelism::Threads(2), &mut cache).unwrap();
        for (run, solo) in staged.runs.iter().zip(&solos) {
            assert_eq!(&run.output, solo);
        }
        assert_eq!(staged.stages.len(), 3);
        for s in &staged.stages {
            assert_eq!((s.ops, s.groups), (3, 1), "stage {}", s.stage);
        }
        assert_eq!(staged.gemm_groups, 2);
        assert_eq!(staged.nonlinear_groups, 1);
        // The coalesced schedule beats three solo schedules.
        let solo_total: f64 = (0..3)
            .map(|_| {
                p.op_stats(&cfg)
                    .unwrap()
                    .iter()
                    .map(|s| s.seconds())
                    .sum::<f64>()
            })
            .sum();
        assert!(staged.batched.seconds() < solo_total);
    }

    #[test]
    fn gemm_left_column_stacking_is_bit_identical() {
        // Two programs sharing a constant LEFT operand (the GCN's Â).
        let mut rng = Pcg32::seed_from_u64(3);
        let a_hat = rng.randn(&[5, 5], 1.0);
        let build = |n: usize| {
            let mut b = Program::builder("gcn-ish", EvalMode::Exact);
            let x = b.input(&[5, n]);
            let a = b.constant(a_hat.clone());
            b.push(
                Op::Gemm {
                    bias: None,
                    sparsity: None,
                },
                &[a, x],
            );
            b.finish().unwrap()
        };
        let (p1, p2) = (build(4), build(7));
        let x1 = rng.randn(&[5, 4], 1.0);
        let x2 = rng.randn(&[5, 7], 1.0);
        let cfg = ArrayConfig::new(8, 16);
        let staged = run_staged(
            &[
                (&p1, std::slice::from_ref(&x1)),
                (&p2, std::slice::from_ref(&x2)),
            ],
            &cfg,
            Parallelism::Sequential,
            &mut TableCache::new(),
        )
        .unwrap();
        assert_eq!(staged.runs[0].output, gemm::matmul(&a_hat, &x1).unwrap());
        assert_eq!(staged.runs[1].output, gemm::matmul(&a_hat, &x2).unwrap());
        assert_eq!(staged.stages[0].groups, 1);
        assert_eq!(staged.gemm_groups, 1);
    }

    #[test]
    fn distinct_weights_and_modes_do_not_coalesce() {
        let mut rng = Pcg32::seed_from_u64(4);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let w1b = rng.randn(&[6, 4], 1.0);
        let x = rng.randn(&[3, 6], 1.0);
        let p_a = mlp(cpwl(), &w1, &w2);
        let p_b = mlp(cpwl(), &w1b, &w2);
        let p_exact = mlp(EvalMode::Exact, &w1, &w2);
        let cfg = ArrayConfig::new(8, 16);
        let staged = run_staged(
            &[
                (&p_a, std::slice::from_ref(&x)),
                (&p_b, std::slice::from_ref(&x)),
                (&p_exact, std::slice::from_ref(&x)),
            ],
            &cfg,
            Parallelism::Sequential,
            &mut TableCache::new(),
        )
        .unwrap();
        // Stage 0: three distinct first-layer weights -> no coalescing
        // between a/b; exact program shares w1 with p_a -> coalesces.
        assert_eq!(staged.stages[0].groups, 2);
        // Stage 1: GELU under cpwl(0.25) twice (one group) + exact (own).
        assert_eq!(staged.stages[1].groups, 2);
        // Stage 2: shared w2 for the two cpwl programs + exact's own...
        // w2 is identical for all three, and GEMM coalescing is
        // mode-independent: one group.
        assert_eq!(staged.stages[2].groups, 1);
    }

    #[test]
    fn input_shape_mismatch_is_rejected() {
        let mut rng = Pcg32::seed_from_u64(5);
        let p = mlp(
            EvalMode::Exact,
            &rng.randn(&[6, 4], 1.0),
            &rng.randn(&[4, 3], 1.0),
        );
        let bad = rng.randn(&[2, 6], 1.0);
        assert!(p
            .run(&[bad], Parallelism::Sequential, &mut TableCache::new())
            .is_err());
        assert!(p
            .run(&[], Parallelism::Sequential, &mut TableCache::new())
            .is_err());
    }

    #[test]
    fn table_cache_reuses_sets() {
        let mut cache = TableCache::new();
        cache.seed(TableSet::for_granularity(0.25).unwrap());
        assert_eq!(cache.get(0.25).unwrap().granularity(), 0.25);
        assert_eq!(cache.get(0.5).unwrap().granularity(), 0.5);
        assert!(cache.get(f32::NAN).is_err());
    }

    /// A weight with its second 16-column block zeroed, plus the dense
    /// and sparse-attributed programs over it.
    fn sparse_pair() -> (Tensor, Program, Program) {
        let mut rng = Pcg32::seed_from_u64(6);
        let n = 32;
        let mut w = rng.randn(&[6, n], 1.0);
        for r in 0..6 {
            for c in 16..n {
                w.as_mut_slice()[r * n + c] = 0.0;
            }
        }
        let build = |sparsity| {
            let mut b = Program::builder("sp", EvalMode::Exact);
            let x = b.input(&[3, 6]);
            let wc = b.constant(w.clone());
            b.push(
                Op::Gemm {
                    bias: None,
                    sparsity,
                },
                &[x, wc],
            );
            b.finish().unwrap()
        };
        let dense = build(None);
        let sparse = build(Some(GemmSparsity {
            block_cols: 16,
            nnz_blocks: 1,
            total_blocks: 2,
            nnz_cols: 16,
        }));
        (w, dense, sparse)
    }

    #[test]
    fn sparse_gemm_runs_bit_identical_and_packs_once() {
        let (w, dense, sparse) = sparse_pair();
        let mut rng = Pcg32::seed_from_u64(7);
        let x = rng.randn(&[3, 6], 1.0);
        let mut cache = TableCache::new();
        for par in [Parallelism::Sequential, Parallelism::Threads(3)] {
            let d = dense
                .run(std::slice::from_ref(&x), par, &mut cache)
                .unwrap();
            let s = sparse
                .run(std::slice::from_ref(&x), par, &mut cache)
                .unwrap();
            assert_eq!(d.output, s.output, "{}", par.label());
            assert_eq!(d.output, gemm::matmul(&x, &w).unwrap());
            // Sparse credit shows up in the solo stats.
            assert!(s.op_stats[0].macs < d.op_stats[0].macs);
        }
        // Both runs hit the one packed weight (same fingerprint).
        assert_eq!(cache.packs.len(), 1);
    }

    #[test]
    fn sparse_and_dense_gemms_over_one_weight_do_not_coalesce() {
        let (_, dense, sparse) = sparse_pair();
        let mut rng = Pcg32::seed_from_u64(8);
        let x1 = rng.randn(&[3, 6], 1.0);
        let x2 = rng.randn(&[3, 6], 1.0);
        let cfg = ArrayConfig::new(8, 16);
        let staged = run_staged(
            &[
                (&dense, std::slice::from_ref(&x1)),
                (&sparse, std::slice::from_ref(&x2)),
            ],
            &cfg,
            Parallelism::Sequential,
            &mut TableCache::new(),
        )
        .unwrap();
        // Same weight, different kernels: two groups, both GEMM.
        assert_eq!(staged.stages[0].groups, 2);
        assert_eq!(staged.gemm_groups, 2);
        // And two sparse programs over the weight DO coalesce.
        let staged = run_staged(
            &[
                (&sparse, std::slice::from_ref(&x1)),
                (&sparse, std::slice::from_ref(&x2)),
            ],
            &cfg,
            Parallelism::Sequential,
            &mut TableCache::new(),
        )
        .unwrap();
        assert_eq!(staged.stages[0].groups, 1);
        // Coalesced sparse output still matches the dense reference.
        let d1 = dense
            .run(
                std::slice::from_ref(&x1),
                Parallelism::Sequential,
                &mut TableCache::new(),
            )
            .unwrap();
        assert_eq!(staged.runs[0].output, d1.output);
    }

    #[test]
    fn int8_quantize_executes_the_coarser_rung() {
        let mut rng = Pcg32::seed_from_u64(9);
        let x = rng.randn(&[2, 5], 1.0);
        let build = |precision| {
            let mut b = Program::builder("q", EvalMode::Exact);
            let i = b.input(&[2, 5]);
            b.push(Op::Quantize { precision }, &[i]);
            b.finish().unwrap()
        };
        let run = |p: &Program| {
            p.run(
                std::slice::from_ref(&x),
                Parallelism::Sequential,
                &mut TableCache::new(),
            )
            .unwrap()
            .output
        };
        let y16 = run(&build(Precision::Int16));
        let y8 = run(&build(Precision::Int8));
        assert_eq!(y16, QuantTensor::quantize(&x).dequantize());
        assert_eq!(y8, QuantTensor8::quantize(&x).dequantize());
        assert_ne!(y16, y8, "the rungs round differently");
    }
}
