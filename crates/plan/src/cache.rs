//! Memoized compilation: a per-model cache of compiled (and optimized)
//! programs keyed on evaluation mode and input geometry.
//!
//! Before this cache existed, every `logits`/`predict` call re-walked
//! the model, re-emitted the operator graph and deep-copied all weights
//! into `Program::consts`. With [`CompileCache`] the compile happens
//! once per `(mode, geometry)` and every subsequent request clones a
//! cheap `Arc`-backed [`Program`] — O(ops) refcount bumps, zero weight
//! copies. `onesa-nn`'s models each own one (cleared by `fit`, which
//! invalidates the baked-in weights).
//!
//! # Example
//!
//! ```
//! use onesa_plan::{CompileCache, EvalMode, Op, Program};
//! use onesa_tensor::Tensor;
//!
//! let cache = CompileCache::new();
//! let build = || {
//!     let mut b = Program::builder("mlp", EvalMode::Exact);
//!     let x = b.input(&[2, 4]);
//!     let w = b.constant(Tensor::zeros(&[4, 3]));
//!     b.push(Op::Gemm { bias: None, sparsity: None }, &[x, w]);
//!     b.finish()
//! };
//! let a = cache.get_or_compile(EvalMode::Exact, &[2, 4], 0, build)?;
//! let b2 = cache.get_or_compile(EvalMode::Exact, &[2, 4], 0, build)?;
//! assert!(std::sync::Arc::ptr_eq(&a, &b2)); // compiled once
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::program::{EvalMode, Program};
use onesa_tensor::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cache key: evaluation mode, input geometry and a caller-chosen
/// salt (models use it to separate network/feature subgraphs, and the
/// GCN folds its graph's Â fingerprint in).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Key {
    mode: u64,
    geometry: Vec<usize>,
    salt: u64,
}

/// A thread-safe memo of compiled programs. See the module docs above.
#[derive(Debug, Default)]
pub struct CompileCache {
    entries: Mutex<Vec<(Key, Arc<Program>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for CompileCache {
    /// Clones the cached entries (cheap — programs are `Arc`-shared) and
    /// resets the hit/miss counters.
    fn clone(&self) -> Self {
        CompileCache {
            entries: Mutex::new(self.entries.lock().expect("cache lock").clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// Returns the cached program for `(mode, geometry, salt)`, or runs
    /// `build` once, caches its result and returns it. A geometry (or
    /// mode, or salt) change is simply a different key — old entries
    /// stay valid, so a model serving several input shapes compiles
    /// each shape once.
    ///
    /// # Errors
    ///
    /// Whatever `build` reports; failed builds are not cached.
    pub fn get_or_compile(
        &self,
        mode: EvalMode,
        geometry: &[usize],
        salt: u64,
        build: impl FnOnce() -> Result<Program>,
    ) -> Result<Arc<Program>> {
        let key = Key {
            mode: mode.cache_key(),
            geometry: geometry.to_vec(),
            salt,
        };
        let mut entries = self.entries.lock().expect("cache lock");
        if let Some((_, program)) = entries.iter().find(|(k, _)| *k == key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(program));
        }
        // Build under the lock: concurrent first requests for one
        // geometry compile once, not racily twice.
        let program = Arc::new(build()?);
        entries.push((key, Arc::clone(&program)));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(program)
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits since construction (or [`CompileCache::clear`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compiles performed) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every entry and resets the counters. Model `fit` methods
    /// call this: training rewrites the weights baked into cached
    /// programs.
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Op;
    use onesa_tensor::Tensor;

    fn build(m: usize) -> Result<Program> {
        let mut b = Program::builder("t", EvalMode::Exact);
        let x = b.input(&[m, 4]);
        let w = b.constant(Tensor::zeros(&[4, 3]));
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w],
        );
        b.finish()
    }

    #[test]
    fn hits_reuse_the_same_arc_with_a_stable_fingerprint() {
        let cache = CompileCache::new();
        let a = cache
            .get_or_compile(EvalMode::Exact, &[2, 4], 0, || build(2))
            .unwrap();
        let b = cache
            .get_or_compile(EvalMode::Exact, &[2, 4], 0, || build(2))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn geometry_mode_and_salt_changes_invalidate() {
        let cache = CompileCache::new();
        let a = cache
            .get_or_compile(EvalMode::Exact, &[2, 4], 0, || build(2))
            .unwrap();
        let g = cache
            .get_or_compile(EvalMode::Exact, &[3, 4], 0, || build(3))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &g));
        let cpwl = EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        };
        let unq = EvalMode::Cpwl {
            granularity: 0.25,
            quantize: false,
        };
        let m1 = cache.get_or_compile(cpwl, &[2, 4], 0, || build(2)).unwrap();
        let m2 = cache.get_or_compile(unq, &[2, 4], 0, || build(2)).unwrap();
        assert!(!Arc::ptr_eq(&m1, &m2), "quantize flag must split the key");
        let s = cache
            .get_or_compile(EvalMode::Exact, &[2, 4], 7, || build(2))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &s));
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn clear_drops_entries_and_failed_builds_are_not_cached() {
        let cache = CompileCache::new();
        assert!(cache.is_empty());
        let err = cache.get_or_compile(EvalMode::Exact, &[2, 4], 0, || {
            Err(onesa_tensor::TensorError::InvalidArgument("nope"))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
        let _ = cache
            .get_or_compile(EvalMode::Exact, &[2, 4], 0, || build(2))
            .unwrap();
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn clone_keeps_entries_but_resets_counters() {
        let cache = CompileCache::new();
        let a = cache
            .get_or_compile(EvalMode::Exact, &[2, 4], 0, || build(2))
            .unwrap();
        let c = cache.clone();
        assert_eq!(c.len(), 1);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        let b = c
            .get_or_compile(EvalMode::Exact, &[2, 4], 0, || build(2))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
