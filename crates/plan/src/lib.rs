//! The operator-graph **Program IR**: whole networks compiled to a
//! topologically-ordered list of array operations.
//!
//! ONE-SA's core claim is that *one* systolic array executes the entire
//! network — GEMMs natively, nonlinear operations through capped
//! piecewise linearization — by mode-switching. This crate makes that
//! claim a first-class software object: a [`Program`] is a list of
//! [`Op`]s over numbered value *slots*, with per-op shape inference, a
//! validator and modeled-MAC costing, plus two executors:
//!
//! * [`Program::run`] — execute one program solo (what `onesa-nn`'s
//!   `logits`/`predict` wrappers call after compiling a model);
//! * [`run_staged`] — execute *many concurrent programs stage by stage*,
//!   coalescing compatible ops across programs at **every** stage:
//!   GEMMs that share a constant weight matrix row-stack (or, for a
//!   shared constant left operand, column-stack) into one kernel call,
//!   and nonlinear/softmax/layer-norm ops that share a function, table
//!   granularity and parameters concatenate into one IPF + MHP pass.
//!   This is the general mechanism behind `onesa_core::BatchEngine`'s
//!   program scheduler — the whole network coalesces, not just the final
//!   shared-weight classifier.
//!
//! Between emission and execution sits the **optimizer** ([`opt`]): an
//! ordered pass pipeline behind [`OptLevel`] (duplicate-boundary
//! elision, common-subexpression sharing, opt-in Affine+Nonlinear
//! fusion, dead-slot sweep) whose default level is bit-identical to the
//! raw emission. Compilation is memoized through [`CompileCache`], and
//! [`Program::consts`] are `Arc`-shared, so cloning a compiled program
//! — which the serving layer does once per request — never copies
//! weight data.
//!
//! The IR sits *below* `onesa-nn` in the crate DAG so models can emit
//! programs (via [`Compile`]) while `onesa-core` re-exports everything
//! here as `onesa_core::plan` and schedules programs through its batch
//! and serve engines.
//!
//! # Building a program by hand
//!
//! A two-layer perceptron — GEMM, GELU, GEMM — over a single input slot:
//!
//! ```
//! use onesa_plan::{EvalMode, Op, Program, TableCache};
//! use onesa_cpwl::NonlinearFn;
//! use onesa_tensor::parallel::Parallelism;
//! use onesa_tensor::rng::Pcg32;
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let w1 = rng.randn(&[16, 8], 1.0);
//! let w2 = rng.randn(&[8, 4], 1.0);
//!
//! let mut b = Program::builder("mlp", EvalMode::Exact);
//! let x = b.input(&[2, 16]);                    // [batch, features]
//! let w1 = b.constant(w1);
//! let w2 = b.constant(w2);
//! let h = b.push(Op::Gemm { bias: None, sparsity: None }, &[x, w1]);
//! let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
//! b.push(Op::Gemm { bias: None, sparsity: None }, &[g, w2]);
//! let program = b.finish()?;                    // validates + infers shapes
//!
//! assert_eq!(program.stages(), 3);
//! assert_eq!(program.output_shape(), &[2, 4]);
//! assert!(program.modeled_macs() > 0);
//!
//! let input = Pcg32::seed_from_u64(8).randn(&[2, 16], 1.0);
//! let run = program.run(&[input], Parallelism::Sequential, &mut TableCache::new())?;
//! assert_eq!(run.output.dims(), &[2, 4]);
//! assert_eq!(run.op_stats.len(), 3);            // one ExecStats per op
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod exec;
pub mod opt;
mod program;
pub mod wire;

pub use cache::CompileCache;
pub use exec::{run_staged, ProgramRun, StageGroups, StagedRun, TableCache};
pub use opt::{OptLevel, OptReport, OptTotals, PassStats, PRUNE_BLOCK_COLS};
pub use program::{
    tensor_fingerprint, EvalMode, GemmSparsity, Op, OpNode, Operand, PoolKind, Precision, Program,
    ProgramBuilder,
};

/// A model that can compile itself into a [`Program`].
///
/// `Ctx` carries whatever per-request specialization the model needs —
/// an inference mode plus input geometry for a CNN, a sequence length
/// for a transformer, a graph for a GCN. The emitted program replays the
/// model's inference math op for op, so running it is bit-identical to
/// the model's direct layer-by-layer path (`onesa-nn` locks this in by
/// test for all three model families).
pub trait Compile<Ctx> {
    /// Compiles the whole network into a validated [`Program`].
    ///
    /// # Errors
    ///
    /// Shape errors if `Ctx` describes inputs the model cannot consume.
    fn compile(&self, ctx: Ctx) -> onesa_tensor::Result<Program>;

    /// Compiles and runs the optimizer pipeline at `level` (see
    /// [`opt`]): what the serving-side wrappers call, usually through a
    /// [`CompileCache`].
    ///
    /// # Errors
    ///
    /// As for [`Compile::compile`].
    fn compile_optimized(&self, ctx: Ctx, level: OptLevel) -> onesa_tensor::Result<Program> {
        self.compile(ctx)?.optimize(level)
    }
}
