//! Hand-rolled binary **wire format** for shipping programs between
//! processes: the serialization layer under `onesa-core`'s cross-host
//! serving transport.
//!
//! The repository builds with no network access, so there is no serde,
//! no bincode — every byte here is written and read by hand. The format
//! is designed around three constraints:
//!
//! * **Bit-identicality.** `f32` payloads travel as little-endian
//!   [`f32::to_bits`] words, so a decoded tensor is bit-identical to the
//!   encoded one — the same `to_bits()` contract the rest of the
//!   repository tests against (NaN payloads and signed zeros included).
//! * **Versioned framing.** Every frame starts with a 4-byte magic, a
//!   format version and a *section table* (id, offset, length per
//!   section), so a reader can locate the sections it knows and a future
//!   format revision can add sections without breaking old payloads.
//!   Unknown versions and malformed frames surface as a typed
//!   [`WireError`], never a panic.
//! * **Zero-copy-friendly tensor payloads.** A tensor's elements are one
//!   contiguous little-endian `f32` run in a dedicated section, aligned
//!   to nothing fancier than byte offsets: a consumer that wants to
//!   avoid the copy can point at the section slice directly, and the
//!   section table makes finding it O(#sections).
//!
//! # Frame layout
//!
//! ```text
//! magic "OSAW" (4) | version u16 | kind u16 | n_sections u32
//! n × { id u32 | offset u64 | len u64 }      # offsets into the body
//! body bytes (sections laid out back to back)
//! ```
//!
//! All integers are little-endian. `kind` identifies the payload
//! ([`KIND_TENSOR`], [`KIND_PROGRAM`]; `onesa-core`'s transport claims
//! kinds ≥ `0x0100` for its protocol messages).
//!
//! # Programs on the wire
//!
//! [`encode_program`] writes a program as three sections — metadata
//! (name, mode, input shapes, fingerprint, optimizer report), the op
//! list, and the constant pool. [`decode_program`] reconstructs through
//! [`ProgramBuilder`][crate::ProgramBuilder], so every decoded program
//! re-runs the same validation and fingerprinting as a locally-built
//! one; the recomputed fingerprint must equal the recorded one or
//! decoding fails with [`WireError::FingerprintMismatch`]. A flipped
//! weight bit, a reordered op, a truncated const — anything that
//! survives the structural checks still trips the fingerprint.
//!
//! ```
//! use onesa_plan::{wire, EvalMode, Op, Program};
//!
//! let mut b = Program::builder("demo", EvalMode::Exact);
//! let x = b.input(&[1, 4]);
//! b.push(Op::Softmax, &[x]);
//! let program = b.finish()?;
//!
//! let bytes = wire::encode_program(&program);
//! let back = wire::decode_program(&bytes).expect("round trip");
//! assert_eq!(back, program);
//! assert_eq!(back.fingerprint(), program.fingerprint());
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use onesa_cpwl::NonlinearFn;
use onesa_sim::{ArrayConfig, BufferSizes, CycleBreakdown, ExecStats, ParamStaging};
use onesa_tensor::im2col::Conv2dGeometry;
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::{Tensor, TensorError};

use crate::opt::{OptLevel, OptReport, OptTotals, PassStats};
use crate::program::{EvalMode, GemmSparsity, Op, Operand, PoolKind, Precision, Program};

/// Leading 4 bytes of every frame.
pub const MAGIC: [u8; 4] = *b"OSAW";

/// Current format version. Bump only with a decode-compat plan: old
/// readers reject newer frames with [`WireError::UnsupportedVersion`].
///
/// * v1 — initial format.
/// * v2 — sparse-GEMM attribute (op tag 20), INT8 quantize boundary
///   (op tag 21), `prune-pack` pass stats and the `pruned` counter in
///   the optimizer-report tail. v1 frames still decode: their ops are
///   the dense/INT16 tags and their report tail is read without the
///   `pruned` field.
pub const VERSION: u16 = 2;

/// Frame kind: a standalone tensor ([`encode_tensor`]).
pub const KIND_TENSOR: u16 = 0x0001;
/// Frame kind: a whole program ([`encode_program`]).
pub const KIND_PROGRAM: u16 = 0x0002;

/// Hard cap on sections per frame — far above any real frame, low
/// enough that a corrupt count cannot drive a large allocation.
const MAX_SECTIONS: u32 = 4096;

/// Everything that can go wrong while decoding wire bytes. Decoding
/// never panics on malformed input; it returns one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The frame's format version is newer than this reader supports.
    UnsupportedVersion {
        /// Version recorded in the frame.
        found: u16,
        /// Highest version this build understands ([`VERSION`]).
        supported: u16,
    },
    /// The buffer ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Structurally invalid bytes (bad tag, bad length, bad UTF-8, …).
    Corrupt(&'static str),
    /// The frame's section table lacks a section the decoder requires.
    MissingSection {
        /// The absent section id.
        id: u32,
    },
    /// A decoded program's recomputed fingerprint differs from the one
    /// recorded on the wire — content corruption that survived the
    /// structural checks.
    FingerprintMismatch {
        /// Fingerprint recorded in the frame.
        recorded: u64,
        /// Fingerprint recomputed from the decoded content.
        computed: u64,
    },
    /// The decoded value failed semantic validation (e.g. a program
    /// whose ops do not type-check).
    Rejected(TensorError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            WireError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported wire format version {found} (this build reads <= {supported})"
            ),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            WireError::MissingSection { id } => write!(f, "frame lacks required section {id}"),
            WireError::FingerprintMismatch { recorded, computed } => write!(
                f,
                "program fingerprint mismatch: wire records {recorded:#018x}, \
                 decoded content hashes to {computed:#018x}"
            ),
            WireError::Rejected(e) => write!(f, "decoded value rejected: {e}"),
        }
    }
}

impl Error for WireError {}

impl From<TensorError> for WireError {
    fn from(e: TensorError) -> Self {
        WireError::Rejected(e)
    }
}

/// Wire-level result.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Appends little-endian primitives to a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the wire has one integer width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one strict byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an `f32` as its little-endian bit pattern —
    /// bit-identical round trips, NaNs and signed zeros included.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `f32` run as contiguous LE bit patterns.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        self.buf.reserve(vs.len() * 4);
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Writes raw bytes with no length prefix (section bodies).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Reads little-endian primitives off a byte slice, tracking position.
/// Every read checks bounds and returns [`WireError::Truncated`] rather
/// than panicking.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the reader consumed its buffer exactly — trailing
    /// garbage is treated as corruption, not silently ignored.
    pub fn expect_end(&self) -> WireResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt("trailing bytes after value"))
        }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> WireResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a wire `u64` into a `usize`, rejecting values that do not
    /// fit the host.
    pub fn get_usize(&mut self) -> WireResult<usize> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError::Corrupt("length exceeds usize"))
    }

    /// Reads a strict bool (0 or 1; anything else is corruption).
    pub fn get_bool(&mut self) -> WireResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool byte is neither 0 nor 1")),
        }
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> WireResult<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("string is not UTF-8"))
    }

    /// Reads a length-prefixed `f32` run. The byte length is validated
    /// against the remaining buffer *before* any allocation, so a
    /// corrupt length cannot drive an oversized `Vec`.
    pub fn get_f32_vec(&mut self) -> WireResult<Vec<f32>> {
        let len = self.get_usize()?;
        let bytes = len
            .checked_mul(4)
            .ok_or(WireError::Corrupt("f32 run length overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// Builds one frame: kind + ordered sections, encoded with the
/// [module-level layout](self).
#[derive(Debug)]
pub struct FrameBuilder {
    kind: u16,
    sections: Vec<(u32, Vec<u8>)>,
}

impl FrameBuilder {
    /// A frame of the given kind with no sections yet.
    pub fn new(kind: u16) -> Self {
        Self {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Ids must be unique within the frame.
    pub fn section(&mut self, id: u32, body: Vec<u8>) -> &mut Self {
        debug_assert!(
            self.sections.iter().all(|(sid, _)| *sid != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, body));
        self
    }

    /// Serializes header, section table and body into one buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u16(VERSION);
        w.put_u16(self.kind);
        w.put_u32(self.sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &self.sections {
            w.put_u32(*id);
            w.put_u64(offset);
            w.put_u64(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &self.sections {
            w.put_bytes(body);
        }
        w.into_bytes()
    }
}

/// A parsed view over one frame's bytes: kind plus resolved section
/// slices. Borrowed, not copied — tensor-payload sections can be read
/// in place.
#[derive(Debug)]
pub struct FrameView<'a> {
    version: u16,
    kind: u16,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> FrameView<'a> {
    /// Parses and bounds-checks a frame. Rejects bad magic, newer
    /// format versions, truncated tables and out-of-range section
    /// extents with a typed [`WireError`].
    pub fn parse(bytes: &'a [u8]) -> WireResult<Self> {
        let mut r = WireReader::new(bytes);
        let magic = r.get_bytes(4)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let version = r.get_u16()?;
        if version > VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let kind = r.get_u16()?;
        let n = r.get_u32()?;
        if n > MAX_SECTIONS {
            return Err(WireError::Corrupt("section count exceeds cap"));
        }
        let mut table = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = r.get_u32()?;
            let offset = r.get_usize()?;
            let len = r.get_usize()?;
            table.push((id, offset, len));
        }
        let body_start = bytes.len() - r.remaining();
        let body = &bytes[body_start..];
        let mut sections = Vec::with_capacity(table.len());
        for (id, offset, len) in table {
            let end = offset
                .checked_add(len)
                .ok_or(WireError::Corrupt("section extent overflows"))?;
            if end > body.len() {
                return Err(WireError::Truncated {
                    needed: end,
                    have: body.len(),
                });
            }
            sections.push((id, &body[offset..end]));
        }
        Ok(Self {
            version,
            kind,
            sections,
        })
    }

    /// The format version the frame was written at (≤ [`VERSION`] —
    /// newer frames are rejected at parse). Decoders branch on this for
    /// fields added in later versions.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The frame's kind tag.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// The section with the given id, or [`WireError::MissingSection`].
    pub fn section(&self, id: u32) -> WireResult<&'a [u8]> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, body)| *body)
            .ok_or(WireError::MissingSection { id })
    }
}

// ---------------------------------------------------------------------------
// Tensors
// ---------------------------------------------------------------------------

/// Section id: tensor rank + dims.
const SEC_TENSOR_META: u32 = 1;
/// Section id: contiguous little-endian `f32` element run.
const SEC_TENSOR_DATA: u32 = 2;

/// Writes a tensor inline (dims, then elements as LE bit patterns).
pub fn put_tensor(w: &mut WireWriter, t: &Tensor) {
    w.put_u32(t.dims().len() as u32);
    for d in t.dims() {
        w.put_usize(*d);
    }
    w.put_f32_slice(t.as_slice());
}

/// Reads a tensor written by [`put_tensor`]. The element count is
/// validated against both the dims product and the remaining bytes.
pub fn get_tensor(r: &mut WireReader<'_>) -> WireResult<Tensor> {
    let rank = r.get_u32()?;
    if rank > 8 {
        return Err(WireError::Corrupt("tensor rank exceeds 8"));
    }
    let mut dims = Vec::with_capacity(rank as usize);
    for _ in 0..rank {
        dims.push(r.get_usize()?);
    }
    let data = r.get_f32_vec()?;
    Tensor::from_vec(data, &dims).map_err(WireError::from)
}

/// Encodes one standalone tensor frame ([`KIND_TENSOR`]): metadata and
/// the raw element run in separate sections so a reader can view the
/// payload zero-copy.
pub fn encode_tensor(t: &Tensor) -> Vec<u8> {
    let mut meta = WireWriter::new();
    meta.put_u32(t.dims().len() as u32);
    for d in t.dims() {
        meta.put_usize(*d);
    }
    let mut data = WireWriter::new();
    data.buf.reserve(t.as_slice().len() * 4);
    for v in t.as_slice() {
        data.put_u32(v.to_bits());
    }
    let mut f = FrameBuilder::new(KIND_TENSOR);
    f.section(SEC_TENSOR_META, meta.into_bytes());
    f.section(SEC_TENSOR_DATA, data.into_bytes());
    f.encode()
}

/// Decodes a frame produced by [`encode_tensor`].
pub fn decode_tensor(bytes: &[u8]) -> WireResult<Tensor> {
    let frame = FrameView::parse(bytes)?;
    if frame.kind() != KIND_TENSOR {
        return Err(WireError::Corrupt("frame kind is not tensor"));
    }
    let mut meta = WireReader::new(frame.section(SEC_TENSOR_META)?);
    let rank = meta.get_u32()?;
    if rank > 8 {
        return Err(WireError::Corrupt("tensor rank exceeds 8"));
    }
    let mut dims = Vec::with_capacity(rank as usize);
    let mut volume = 1usize;
    for _ in 0..rank {
        let d = meta.get_usize()?;
        volume = volume
            .checked_mul(d)
            .ok_or(WireError::Corrupt("tensor volume overflows"))?;
        dims.push(d);
    }
    meta.expect_end()?;
    let payload = frame.section(SEC_TENSOR_DATA)?;
    if payload.len() != volume * 4 {
        return Err(WireError::Corrupt("tensor payload length != dims product"));
    }
    let data = payload
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect();
    Tensor::from_vec(data, &dims).map_err(WireError::from)
}

// ---------------------------------------------------------------------------
// Scalar enums shared with the transport
// ---------------------------------------------------------------------------

/// Writes an [`EvalMode`].
pub fn put_eval_mode(w: &mut WireWriter, mode: EvalMode) {
    match mode {
        EvalMode::Exact => w.put_u8(0),
        EvalMode::Cpwl {
            granularity,
            quantize,
        } => {
            w.put_u8(1);
            w.put_f32(granularity);
            w.put_bool(quantize);
        }
    }
}

/// Reads an [`EvalMode`].
pub fn get_eval_mode(r: &mut WireReader<'_>) -> WireResult<EvalMode> {
    match r.get_u8()? {
        0 => Ok(EvalMode::Exact),
        1 => Ok(EvalMode::Cpwl {
            granularity: r.get_f32()?,
            quantize: r.get_bool()?,
        }),
        _ => Err(WireError::Corrupt("unknown EvalMode tag")),
    }
}

/// Writes a [`NonlinearFn`].
pub fn put_nonlinear(w: &mut WireWriter, f: NonlinearFn) {
    let tag: u8 = match f {
        NonlinearFn::Gelu => 0,
        NonlinearFn::Erf => 1,
        NonlinearFn::Exp => 2,
        NonlinearFn::Sigmoid => 3,
        NonlinearFn::Tanh => 4,
        NonlinearFn::Silu => 5,
        NonlinearFn::Softplus => 6,
        NonlinearFn::Mish => 7,
        NonlinearFn::Elu(_) => 8,
        NonlinearFn::LeakyRelu(_) => 9,
        NonlinearFn::Relu => 10,
        NonlinearFn::Sqrt => 11,
        NonlinearFn::Rsqrt => 12,
        NonlinearFn::Reciprocal => 13,
        NonlinearFn::Ln => 14,
        NonlinearFn::Square => 15,
        // `NonlinearFn` is #[non_exhaustive]; a new variant must be
        // assigned a wire tag (and a format-version plan) here before
        // it can ship.
        _ => unreachable!("NonlinearFn variant without a wire tag"),
    };
    w.put_u8(tag);
    match f {
        NonlinearFn::Elu(a) | NonlinearFn::LeakyRelu(a) => w.put_f32(a),
        _ => {}
    }
}

/// Reads a [`NonlinearFn`].
pub fn get_nonlinear(r: &mut WireReader<'_>) -> WireResult<NonlinearFn> {
    Ok(match r.get_u8()? {
        0 => NonlinearFn::Gelu,
        1 => NonlinearFn::Erf,
        2 => NonlinearFn::Exp,
        3 => NonlinearFn::Sigmoid,
        4 => NonlinearFn::Tanh,
        5 => NonlinearFn::Silu,
        6 => NonlinearFn::Softplus,
        7 => NonlinearFn::Mish,
        8 => NonlinearFn::Elu(r.get_f32()?),
        9 => NonlinearFn::LeakyRelu(r.get_f32()?),
        10 => NonlinearFn::Relu,
        11 => NonlinearFn::Sqrt,
        12 => NonlinearFn::Rsqrt,
        13 => NonlinearFn::Reciprocal,
        14 => NonlinearFn::Ln,
        15 => NonlinearFn::Square,
        _ => return Err(WireError::Corrupt("unknown NonlinearFn tag")),
    })
}

/// Writes a [`Parallelism`] policy (the transport's Configure message
/// carries the worker's host-execution policy).
pub fn put_parallelism(w: &mut WireWriter, p: Parallelism) {
    match p {
        Parallelism::Sequential => w.put_u8(0),
        Parallelism::Threads(n) => {
            w.put_u8(1);
            w.put_usize(n);
        }
        Parallelism::Auto => w.put_u8(2),
    }
}

/// Reads a [`Parallelism`] policy.
pub fn get_parallelism(r: &mut WireReader<'_>) -> WireResult<Parallelism> {
    Ok(match r.get_u8()? {
        0 => Parallelism::Sequential,
        1 => Parallelism::Threads(r.get_usize()?),
        2 => Parallelism::Auto,
        _ => return Err(WireError::Corrupt("unknown Parallelism tag")),
    })
}

/// Writes an [`ArrayConfig`] (shipped once per worker at configure
/// time, so every shard prices cycles identically).
pub fn put_array_config(w: &mut WireWriter, c: &ArrayConfig) {
    w.put_usize(c.dim);
    w.put_usize(c.macs_per_pe);
    w.put_f64(c.clock_mhz);
    w.put_usize(c.w_out_fifo);
    w.put_usize(c.w_dram);
    w.put_usize(c.ipf_pipeline_latency);
    w.put_u8(match c.staging {
        ParamStaging::Fused => 0,
        ParamStaging::Dram => 1,
    });
    w.put_usize(c.buffers.l3_bytes);
    w.put_usize(c.buffers.l2_bytes);
    w.put_usize(c.buffers.pe_out_bytes);
    w.put_usize(c.buffers.l1_bytes);
}

/// Reads an [`ArrayConfig`].
pub fn get_array_config(r: &mut WireReader<'_>) -> WireResult<ArrayConfig> {
    Ok(ArrayConfig {
        dim: r.get_usize()?,
        macs_per_pe: r.get_usize()?,
        clock_mhz: r.get_f64()?,
        w_out_fifo: r.get_usize()?,
        w_dram: r.get_usize()?,
        ipf_pipeline_latency: r.get_usize()?,
        staging: match r.get_u8()? {
            0 => ParamStaging::Fused,
            1 => ParamStaging::Dram,
            _ => return Err(WireError::Corrupt("unknown ParamStaging tag")),
        },
        buffers: BufferSizes {
            l3_bytes: r.get_usize()?,
            l2_bytes: r.get_usize()?,
            pe_out_bytes: r.get_usize()?,
            l1_bytes: r.get_usize()?,
        },
    })
}

/// Writes an [`ExecStats`] (per-request outcomes travel back from the
/// worker with their full cycle breakdown).
pub fn put_exec_stats(w: &mut WireWriter, s: &ExecStats) {
    w.put_u64(s.breakdown.skew);
    w.put_u64(s.breakdown.compute);
    w.put_u64(s.breakdown.drain);
    w.put_u64(s.breakdown.ipf);
    w.put_u64(s.breakdown.dram_stall);
    w.put_u64(s.macs);
    w.put_u64(s.nonlinear_evals);
    w.put_f64(s.clock_mhz);
}

/// Reads an [`ExecStats`].
pub fn get_exec_stats(r: &mut WireReader<'_>) -> WireResult<ExecStats> {
    Ok(ExecStats {
        breakdown: CycleBreakdown {
            skew: r.get_u64()?,
            compute: r.get_u64()?,
            drain: r.get_u64()?,
            ipf: r.get_u64()?,
            dram_stall: r.get_u64()?,
        },
        macs: r.get_u64()?,
        nonlinear_evals: r.get_u64()?,
        clock_mhz: r.get_f64()?,
    })
}

// ---------------------------------------------------------------------------
// Ops and programs
// ---------------------------------------------------------------------------

fn put_operand(w: &mut WireWriter, o: Operand) {
    match o {
        Operand::Slot(i) => {
            w.put_u8(0);
            w.put_usize(i);
        }
        Operand::Const(i) => {
            w.put_u8(1);
            w.put_usize(i);
        }
    }
}

fn get_operand(r: &mut WireReader<'_>) -> WireResult<Operand> {
    Ok(match r.get_u8()? {
        0 => Operand::Slot(r.get_usize()?),
        1 => Operand::Const(r.get_usize()?),
        _ => return Err(WireError::Corrupt("unknown Operand tag")),
    })
}

fn put_opt_bias(w: &mut WireWriter, bias: &Option<Vec<f32>>) {
    match bias {
        None => w.put_u8(0),
        Some(b) => {
            w.put_u8(1);
            w.put_f32_slice(b);
        }
    }
}

fn get_opt_bias(r: &mut WireReader<'_>) -> WireResult<Option<Vec<f32>>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_f32_vec()?)),
        _ => Err(WireError::Corrupt("unknown Option tag")),
    }
}

fn put_op(w: &mut WireWriter, op: &Op) {
    match op {
        // Dense GEMMs keep the v1 tag so pre-sparsity fixtures decode
        // unchanged; a sparse attribute moves the op to tag 20 (v2).
        Op::Gemm {
            bias,
            sparsity: None,
        } => {
            w.put_u8(0);
            put_opt_bias(w, bias);
        }
        Op::Gemm {
            bias,
            sparsity: Some(s),
        } => {
            w.put_u8(20);
            put_opt_bias(w, bias);
            w.put_usize(s.block_cols);
            w.put_usize(s.nnz_blocks);
            w.put_usize(s.total_blocks);
            w.put_usize(s.nnz_cols);
        }
        Op::Nonlinear(f) => {
            w.put_u8(1);
            put_nonlinear(w, *f);
        }
        Op::Softmax => w.put_u8(2),
        Op::LayerNorm { gamma, beta, eps } => {
            w.put_u8(3);
            w.put_f32_slice(gamma);
            w.put_f32_slice(beta);
            w.put_f32(*eps);
        }
        Op::Im2col(g) => {
            w.put_u8(4);
            w.put_usize(g.in_channels);
            w.put_usize(g.out_channels);
            w.put_usize(g.kernel);
            w.put_usize(g.stride);
            w.put_usize(g.padding);
        }
        Op::Col2im { channels, oh, ow } => {
            w.put_u8(5);
            w.put_usize(*channels);
            w.put_usize(*oh);
            w.put_usize(*ow);
        }
        Op::Add => w.put_u8(6),
        Op::Affine { k, b } => {
            w.put_u8(7);
            w.put_f32_slice(k);
            w.put_f32_slice(b);
        }
        Op::Scale(c) => {
            w.put_u8(8);
            w.put_f32(*c);
        }
        Op::AffineNonlinear { k, b, func } => {
            w.put_u8(9);
            w.put_f32_slice(k);
            w.put_f32_slice(b);
            put_nonlinear(w, *func);
        }
        Op::Transpose => w.put_u8(10),
        Op::SliceCols { start, len } => {
            w.put_u8(11);
            w.put_usize(*start);
            w.put_usize(*len);
        }
        Op::ConcatCols => w.put_u8(12),
        Op::Pool(kind) => {
            w.put_u8(13);
            w.put_u8(match kind {
                PoolKind::GlobalAvg => 0,
                PoolKind::MeanRows => 1,
            });
        }
        // The INT16 boundary keeps the v1 tag; INT8 is tag 21 (v2).
        Op::Quantize {
            precision: Precision::Int16,
        } => w.put_u8(14),
        Op::Quantize {
            precision: Precision::Int8,
        } => w.put_u8(21),
        Op::Embed => w.put_u8(15),
        Op::ConcatRows => w.put_u8(16),
        Op::CausalSoftmax { offset } => {
            w.put_u8(17);
            w.put_usize(*offset);
        }
        Op::EmbedAt { offset } => {
            w.put_u8(18);
            w.put_usize(*offset);
        }
        Op::QuantizeRows => w.put_u8(19),
    }
}

fn get_op(r: &mut WireReader<'_>) -> WireResult<Op> {
    Ok(match r.get_u8()? {
        0 => Op::Gemm {
            bias: get_opt_bias(r)?,
            sparsity: None,
        },
        1 => Op::Nonlinear(get_nonlinear(r)?),
        2 => Op::Softmax,
        3 => Op::LayerNorm {
            gamma: r.get_f32_vec()?,
            beta: r.get_f32_vec()?,
            eps: r.get_f32()?,
        },
        4 => Op::Im2col(Conv2dGeometry {
            in_channels: r.get_usize()?,
            out_channels: r.get_usize()?,
            kernel: r.get_usize()?,
            stride: r.get_usize()?,
            padding: r.get_usize()?,
        }),
        5 => Op::Col2im {
            channels: r.get_usize()?,
            oh: r.get_usize()?,
            ow: r.get_usize()?,
        },
        6 => Op::Add,
        7 => Op::Affine {
            k: r.get_f32_vec()?,
            b: r.get_f32_vec()?,
        },
        8 => Op::Scale(r.get_f32()?),
        9 => Op::AffineNonlinear {
            k: r.get_f32_vec()?,
            b: r.get_f32_vec()?,
            func: get_nonlinear(r)?,
        },
        10 => Op::Transpose,
        11 => Op::SliceCols {
            start: r.get_usize()?,
            len: r.get_usize()?,
        },
        12 => Op::ConcatCols,
        13 => Op::Pool(match r.get_u8()? {
            0 => PoolKind::GlobalAvg,
            1 => PoolKind::MeanRows,
            _ => return Err(WireError::Corrupt("unknown PoolKind tag")),
        }),
        14 => Op::Quantize {
            precision: Precision::Int16,
        },
        15 => Op::Embed,
        16 => Op::ConcatRows,
        17 => Op::CausalSoftmax {
            offset: r.get_usize()?,
        },
        18 => Op::EmbedAt {
            offset: r.get_usize()?,
        },
        19 => Op::QuantizeRows,
        20 => Op::Gemm {
            bias: get_opt_bias(r)?,
            sparsity: Some(GemmSparsity {
                block_cols: r.get_usize()?,
                nnz_blocks: r.get_usize()?,
                total_blocks: r.get_usize()?,
                nnz_cols: r.get_usize()?,
            }),
        },
        21 => Op::Quantize {
            precision: Precision::Int8,
        },
        _ => return Err(WireError::Corrupt("unknown Op tag")),
    })
}

fn put_opt_report(w: &mut WireWriter, report: &OptReport) {
    w.put_u8(match report.level {
        OptLevel::None => 0,
        OptLevel::Standard => 1,
        OptLevel::Fusion => 2,
    });
    w.put_usize(report.ops_before);
    w.put_usize(report.ops_after);
    w.put_u64(report.macs_before);
    w.put_u64(report.macs_after);
    w.put_usize(report.passes.len());
    for p in &report.passes {
        w.put_str(p.pass);
        w.put_usize(p.removed);
    }
    w.put_usize(report.totals.elided);
    w.put_usize(report.totals.shared);
    w.put_usize(report.totals.fused);
    w.put_usize(report.totals.dead);
    w.put_usize(report.totals.pruned); // v2 tail field
}

/// The optimizer's pass names are `&'static str`; decoding maps wire
/// strings back onto the known statics so the round trip preserves the
/// exact type. An unknown name is corruption (the set only grows with
/// the format version).
fn intern_pass_name(name: &str) -> WireResult<&'static str> {
    match name {
        "quantize-elision" => Ok("quantize-elision"),
        "cse" => Ok("cse"),
        "prune-pack" => Ok("prune-pack"),
        "fusion" => Ok("fusion"),
        "dead-slot" => Ok("dead-slot"),
        _ => Err(WireError::Corrupt("unknown optimizer pass name")),
    }
}

fn get_opt_report(r: &mut WireReader<'_>, version: u16) -> WireResult<OptReport> {
    let level = match r.get_u8()? {
        0 => OptLevel::None,
        1 => OptLevel::Standard,
        2 => OptLevel::Fusion,
        _ => return Err(WireError::Corrupt("unknown OptLevel tag")),
    };
    let ops_before = r.get_usize()?;
    let ops_after = r.get_usize()?;
    let macs_before = r.get_u64()?;
    let macs_after = r.get_u64()?;
    let n_passes = r.get_usize()?;
    if n_passes > 64 {
        return Err(WireError::Corrupt("pass count exceeds cap"));
    }
    let mut passes = Vec::with_capacity(n_passes);
    for _ in 0..n_passes {
        let name = r.get_str()?;
        passes.push(PassStats {
            pass: intern_pass_name(&name)?,
            removed: r.get_usize()?,
        });
    }
    Ok(OptReport {
        level,
        ops_before,
        ops_after,
        macs_before,
        macs_after,
        passes,
        totals: OptTotals {
            elided: r.get_usize()?,
            shared: r.get_usize()?,
            fused: r.get_usize()?,
            dead: r.get_usize()?,
            // v1 frames predate the prune-pack pass: no field, no work.
            pruned: if version >= 2 { r.get_usize()? } else { 0 },
        },
    })
}

/// Section id: program name, mode, input shapes, fingerprint, report.
const SEC_PROG_META: u32 = 1;
/// Section id: the topologically-ordered op list.
const SEC_PROG_NODES: u32 = 2;
/// Section id: the constant pool (weights), tensors back to back.
const SEC_PROG_CONSTS: u32 = 3;
/// Section id: session wiring (session input indices + output slots).
/// Optional — stateless programs omit it, so pre-session frames (and
/// their golden fixtures) decode unchanged.
const SEC_PROG_SESSION: u32 = 4;

/// Encodes a whole program as one [`KIND_PROGRAM`] frame: metadata, op
/// list and constant pool in separate sections. The program's
/// fingerprint rides in the metadata section and is re-checked on
/// decode.
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut meta = WireWriter::new();
    meta.put_str(p.name());
    put_eval_mode(&mut meta, p.mode());
    meta.put_usize(p.input_shapes().len());
    for shape in p.input_shapes() {
        meta.put_u32(shape.len() as u32);
        for d in shape {
            meta.put_usize(*d);
        }
    }
    meta.put_u64(p.fingerprint());
    match p.opt_report() {
        None => meta.put_u8(0),
        Some(report) => {
            meta.put_u8(1);
            put_opt_report(&mut meta, report);
        }
    }

    let mut nodes = WireWriter::new();
    nodes.put_usize(p.nodes().len());
    for node in p.nodes() {
        put_op(&mut nodes, &node.op);
        nodes.put_usize(node.inputs.len());
        for operand in &node.inputs {
            put_operand(&mut nodes, *operand);
        }
    }

    let mut consts = WireWriter::new();
    consts.put_usize(p.consts().len());
    for c in p.consts() {
        put_tensor(&mut consts, c);
    }

    let mut f = FrameBuilder::new(KIND_PROGRAM);
    f.section(SEC_PROG_META, meta.into_bytes());
    f.section(SEC_PROG_NODES, nodes.into_bytes());
    f.section(SEC_PROG_CONSTS, consts.into_bytes());
    if p.is_session() {
        let mut session = WireWriter::new();
        session.put_usize(p.session_inputs().len());
        for &i in p.session_inputs() {
            session.put_usize(i);
        }
        session.put_usize(p.session_outputs().len());
        for &s in p.session_outputs() {
            session.put_usize(s);
        }
        f.section(SEC_PROG_SESSION, session.into_bytes());
    }
    f.encode()
}

/// Decodes a frame produced by [`encode_program`].
///
/// Reconstruction goes through [`Program::builder`], so the decoded
/// program re-runs the same validation, shape inference, fingerprinting
/// and MAC costing as a locally-built one. The recomputed fingerprint
/// must equal the one recorded on the wire ([`WireError::FingerprintMismatch`]
/// otherwise), which makes the fingerprint an end-to-end content check
/// over ops, operands and every constant bit.
///
/// # Errors
///
/// Any [`WireError`]; semantic validation failures surface as
/// [`WireError::Rejected`].
pub fn decode_program(bytes: &[u8]) -> WireResult<Program> {
    let frame = FrameView::parse(bytes)?;
    if frame.kind() != KIND_PROGRAM {
        return Err(WireError::Corrupt("frame kind is not program"));
    }

    let mut meta = WireReader::new(frame.section(SEC_PROG_META)?);
    let name = meta.get_str()?;
    let mode = get_eval_mode(&mut meta)?;
    let n_inputs = meta.get_usize()?;
    if n_inputs > 4096 {
        return Err(WireError::Corrupt("input count exceeds cap"));
    }
    let mut builder = Program::builder(&name, mode);
    for _ in 0..n_inputs {
        let rank = meta.get_u32()?;
        if rank > 8 {
            return Err(WireError::Corrupt("input rank exceeds 8"));
        }
        let mut shape = Vec::with_capacity(rank as usize);
        for _ in 0..rank {
            shape.push(meta.get_usize()?);
        }
        builder.input(&shape);
    }
    let fingerprint = meta.get_u64()?;
    let opt = match meta.get_u8()? {
        0 => None,
        1 => Some(get_opt_report(&mut meta, frame.version())?),
        _ => return Err(WireError::Corrupt("unknown Option tag")),
    };
    meta.expect_end()?;

    let mut consts = WireReader::new(frame.section(SEC_PROG_CONSTS)?);
    let n_consts = consts.get_usize()?;
    if n_consts > 65_536 {
        return Err(WireError::Corrupt("const count exceeds cap"));
    }
    for _ in 0..n_consts {
        let t = get_tensor(&mut consts)?;
        builder.constant_shared(Arc::new(t));
    }
    consts.expect_end()?;

    let mut nodes = WireReader::new(frame.section(SEC_PROG_NODES)?);
    let n_nodes = nodes.get_usize()?;
    if n_nodes > 1_048_576 {
        return Err(WireError::Corrupt("node count exceeds cap"));
    }
    for _ in 0..n_nodes {
        let op = get_op(&mut nodes)?;
        let n_operands = nodes.get_usize()?;
        if n_operands > 4096 {
            return Err(WireError::Corrupt("operand count exceeds cap"));
        }
        let mut operands = Vec::with_capacity(n_operands);
        for _ in 0..n_operands {
            operands.push(get_operand(&mut nodes)?);
        }
        builder.push(op, &operands);
    }
    nodes.expect_end()?;

    // Optional session wiring (absent from stateless frames).
    match frame.section(SEC_PROG_SESSION) {
        Ok(body) => {
            let mut session = WireReader::new(body);
            let n_in_session = session.get_usize()?;
            if n_in_session > 4096 {
                return Err(WireError::Corrupt("session input count exceeds cap"));
            }
            for _ in 0..n_in_session {
                builder.mark_session_input(Operand::Slot(session.get_usize()?));
            }
            let n_out_session = session.get_usize()?;
            if n_out_session > 4096 {
                return Err(WireError::Corrupt("session output count exceeds cap"));
            }
            for _ in 0..n_out_session {
                let slot = session.get_usize()?;
                if slot < n_inputs {
                    return Err(WireError::Corrupt("session output names an input slot"));
                }
                builder.mark_session_output(Operand::Slot(slot));
            }
            session.expect_end()?;
        }
        Err(WireError::MissingSection { .. }) => {}
        Err(e) => return Err(e),
    }

    // `finish` re-validates and recomputes fingerprint + modeled MACs
    // from the decoded content — the wire carries no trusted derived
    // state beyond the fingerprint it is checked against.
    let mut program = builder.finish()?;
    program.opt = opt;
    if program.fingerprint() != fingerprint {
        return Err(WireError::FingerprintMismatch {
            recorded: fingerprint,
            computed: program.fingerprint(),
        });
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptLevel;
    use onesa_tensor::rng::Pcg32;

    fn sample_tensor() -> Tensor {
        Tensor::from_vec(vec![1.5, -0.0, f32::NAN, 3.25e-12, -7.0, 42.0], &[2, 3]).unwrap()
    }

    fn sample_program() -> Program {
        let mut rng = Pcg32::seed_from_u64(11);
        let w = rng.randn(&[4, 3], 1.0);
        let mut b = Program::builder(
            "wire-sample",
            EvalMode::Cpwl {
                granularity: 0.25,
                quantize: true,
            },
        );
        let x = b.input(&[2, 4]);
        let q = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let c = b.constant(w);
        let g = b.push(
            Op::Gemm {
                bias: Some(vec![0.5, -1.0, 0.0]),
                sparsity: None,
            },
            &[q, c],
        );
        b.push(Op::Nonlinear(NonlinearFn::Gelu), &[g]);
        b.finish().unwrap()
    }

    #[test]
    fn tensor_round_trip_is_bit_identical() {
        let t = sample_tensor();
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.dims(), t.dims());
        let (a, b): (Vec<u32>, Vec<u32>) = (
            t.as_slice().iter().map(|v| v.to_bits()).collect(),
            back.as_slice().iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(a, b, "NaN payloads and -0.0 survive the wire");
    }

    #[test]
    fn inline_tensor_round_trip() {
        let t = sample_tensor();
        let mut w = WireWriter::new();
        put_tensor(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = get_tensor(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(
            back.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn program_round_trip_preserves_everything() {
        let p = sample_program();
        let back = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.fingerprint(), p.fingerprint());
        assert_eq!(back.modeled_macs(), p.modeled_macs());
    }

    #[test]
    fn optimized_program_round_trip_keeps_report() {
        let p = sample_program().optimize(OptLevel::Standard).unwrap();
        assert!(p.opt_report().is_some());
        let back = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(back.opt_report(), p.opt_report());
        assert_eq!(back, p);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_tensor(&sample_tensor());
        bytes[0] = b'X';
        match decode_tensor(&bytes) {
            Err(WireError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn newer_version_is_rejected_not_panicked() {
        let mut bytes = encode_tensor(&sample_tensor());
        bytes[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
        match decode_tensor(&bytes) {
            Err(WireError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, VERSION + 1);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let bytes = encode_program(&sample_program());
        for len in 0..bytes.len() {
            let err = decode_program(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. }
                        | WireError::Corrupt(_)
                        | WireError::MissingSection { .. }
                        | WireError::BadMagic { .. }
                ),
                "prefix of {len} bytes gave unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn flipped_weight_bit_trips_fingerprint() {
        let p = sample_program();
        let bytes = encode_program(&p);
        // The const pool is the last section; flip a bit in its final
        // f32 word (a weight element, after the count prefix).
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 1] ^= 0x01;
        match decode_program(&corrupt) {
            Err(WireError::FingerprintMismatch { recorded, computed }) => {
                assert_ne!(recorded, computed)
            }
            Err(WireError::Rejected(_)) => {} // flipped into an invalid value
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let mut f = FrameBuilder::new(KIND_PROGRAM);
        f.section(SEC_PROG_META, Vec::new());
        let bytes = f.encode();
        match decode_program(&bytes) {
            // META parses first and is empty → truncated read inside it.
            Err(WireError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        let mut f = FrameBuilder::new(KIND_PROGRAM);
        let p = sample_program();
        let encoded = encode_program(&p);
        let full = FrameView::parse(&encoded).unwrap();
        f.section(SEC_PROG_META, full.section(SEC_PROG_META).unwrap().to_vec());
        f.section(
            SEC_PROG_NODES,
            full.section(SEC_PROG_NODES).unwrap().to_vec(),
        );
        match decode_program(&f.encode()) {
            Err(WireError::MissingSection { id }) => assert_eq!(id, SEC_PROG_CONSTS),
            other => panic!("expected MissingSection, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let t = sample_tensor();
        assert!(matches!(
            decode_program(&encode_tensor(&t)),
            Err(WireError::Corrupt("frame kind is not program"))
        ));
    }

    #[test]
    fn strict_bool_and_unknown_tags_are_corrupt() {
        let mut w = WireWriter::new();
        w.put_u8(2);
        let bytes = w.into_bytes();
        assert!(matches!(
            WireReader::new(&bytes).get_bool(),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            get_nonlinear(&mut WireReader::new(&[99])),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            get_op(&mut WireReader::new(&[200])),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn exec_stats_and_config_round_trip() {
        let stats = ExecStats {
            breakdown: CycleBreakdown {
                skew: 3,
                compute: 1000,
                drain: 12,
                ipf: 7,
                dram_stall: 99,
            },
            macs: 123_456,
            nonlinear_evals: 789,
            clock_mhz: 200.0,
        };
        let mut w = WireWriter::new();
        put_exec_stats(&mut w, &stats);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(get_exec_stats(&mut r).unwrap(), stats);
        r.expect_end().unwrap();

        let cfg = ArrayConfig::default();
        let mut w = WireWriter::new();
        put_array_config(&mut w, &cfg);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(get_array_config(&mut r).unwrap(), cfg);
        r.expect_end().unwrap();
    }
}
