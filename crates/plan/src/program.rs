//! The Program IR: ops, slots, shape inference, validation and costing.

use crate::opt::OptReport;
use onesa_cpwl::NonlinearFn;
use onesa_resources::array::ArrayResources;
use onesa_resources::power::PowerModel;
use onesa_resources::Design;
use onesa_sim::{analytic, ArrayConfig, CycleBreakdown, ExecStats};
use onesa_tensor::im2col::Conv2dGeometry;
use onesa_tensor::{Result, Tensor, TensorError};
use std::sync::Arc;

/// How a program evaluates its nonlinear operations — the compile-time
/// image of `onesa_nn::infer::InferenceMode` (the IR sits below `nn` in
/// the crate DAG, so it carries the mode by value, not by reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalMode {
    /// Reference floating-point arithmetic.
    Exact,
    /// CPWL tables at one granularity. `quantize` records whether the
    /// compiler emitted INT16 [`Op::Quantize`] boundaries (the executor
    /// itself only reads `granularity`).
    Cpwl {
        /// Shared table granularity.
        granularity: f32,
        /// Whether layer boundaries round-trip through INT16.
        quantize: bool,
    },
}

impl EvalMode {
    /// The table granularity, if the mode uses CPWL tables.
    pub fn granularity(&self) -> Option<f32> {
        match self {
            EvalMode::Exact => None,
            EvalMode::Cpwl { granularity, .. } => Some(*granularity),
        }
    }

    /// Coalescing key: programs whose nonlinears may share an IPF pass
    /// hash identically (exact, or CPWL at the same granularity).
    pub(crate) fn coalesce_key(&self) -> u64 {
        match self {
            EvalMode::Exact => 1,
            EvalMode::Cpwl { granularity, .. } => 2 | (u64::from(granularity.to_bits()) << 8),
        }
    }

    /// Compile-cache key: unlike [`EvalMode::coalesce_key`] this also
    /// distinguishes the `quantize` flag, because quantized and
    /// unquantized programs at the same granularity emit different ops.
    pub(crate) fn cache_key(&self) -> u64 {
        match self {
            EvalMode::Exact => 0,
            EvalMode::Cpwl {
                granularity,
                quantize,
            } => 1 | (u64::from(*quantize) << 1) | (u64::from(granularity.to_bits()) << 8),
        }
    }
}

/// Where an op reads a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A runtime value: a program input or an earlier op's output.
    Slot(usize),
    /// A compile-time constant (weights, attention projections, Â, …),
    /// indexed into [`Program::consts`].
    Const(usize),
}

/// The integer width an [`Op::Quantize`] boundary rounds through.
///
/// [`Precision::Int16`] is the paper's evaluation precision and the
/// default every compiler emits; [`Precision::Int8`] is the coarser rung
/// below it for models that tolerate the larger step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Symmetric INT16 round trip (`onesa_tensor::quant::QuantTensor`).
    Int16,
    /// Symmetric INT8 round trip (`onesa_tensor::quant::QuantTensor8`).
    Int8,
}

/// Column-block sparsity attribute of an [`Op::Gemm`] whose (constant)
/// right operand has zero column blocks. The optimizer's `prune-pack`
/// pass attaches this after scanning the weight; the executor then runs
/// the sparsity-aware kernel (`onesa_tensor::sparse`) and the cost model
/// credits the skipped blocks. Validation re-scans the weight, so an
/// attribute that disagrees with the constant (e.g. corrupted wire
/// bytes) fails typed at build time, never inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmSparsity {
    /// Column-block width the weight was scanned at.
    pub block_cols: usize,
    /// Column blocks holding data.
    pub nnz_blocks: usize,
    /// Total column blocks (`ceil(n / block_cols)`).
    pub total_blocks: usize,
    /// Surviving columns across the non-zero blocks (edge blocks are
    /// clipped, so this is not always `nnz_blocks · block_cols`).
    pub nnz_cols: usize,
}

impl GemmSparsity {
    /// Fraction of column blocks holding data.
    pub fn density(&self) -> f64 {
        if self.total_blocks == 0 {
            1.0
        } else {
            self.nnz_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Column blocks the kernel skips entirely.
    pub fn skipped_blocks(&self) -> usize {
        self.total_blocks - self.nnz_blocks
    }
}

/// Which pooling reduction an [`Op::Pool`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Global average pooling: `[C, H, W] → [1, C]` (mean over `H·W`
    /// per channel — a GEMM against a `1/(H·W)` vector on the array).
    GlobalAvg,
    /// Mean over rows: `[L, D] → [1, D]` (transformer mean-pooling).
    MeanRows,
}

/// One operation of the IR.
///
/// The set covers everything the repository's three model families need
/// end to end. GEMM-bearing ops run on the array natively; `Nonlinear`,
/// `Softmax` and `LayerNorm` lower to IPF + MHP passes per the paper;
/// `Affine`/`Scale`/`Add` are bare MHP passes; the rest are data-layout
/// movements costed at zero array cycles.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `out = a · b` (+ per-column `bias`). Inputs: `[a, b]`; either
    /// operand may be a constant. A constant right operand is the
    /// shared-weight case the staged scheduler row-stacks across
    /// programs; a constant left operand (a GCN's Â) column-stacks.
    Gemm {
        /// Per-output-column bias, applied after the product.
        bias: Option<Vec<f32>>,
        /// Column-block sparsity of a constant right operand, attached
        /// by the optimizer's `prune-pack` pass (`None` = dense). The
        /// validator re-checks the attribute against the weight.
        sparsity: Option<GemmSparsity>,
    },
    /// A pointwise nonlinear evaluation (IPF + MHP under CPWL modes,
    /// the exact scalar function otherwise). One input, any shape.
    Nonlinear(NonlinearFn),
    /// Row-wise softmax over a matrix (the paper's 6-step lowering).
    Softmax,
    /// Row-wise layer normalization with a learned affine.
    LayerNorm {
        /// Scale γ (length = row width).
        gamma: Vec<f32>,
        /// Shift β (length = row width).
        beta: Vec<f32>,
        /// Variance epsilon.
        eps: f32,
    },
    /// Unrolls a `[C, H, W]` input into the `[OH·OW, C·k·k]` patch
    /// matrix (convolution-as-GEMM).
    Im2col(Conv2dGeometry),
    /// Reassembles a `[OH·OW, C]` GEMM result into a `[C, OH, OW]`
    /// feature map.
    Col2im {
        /// Output channels.
        channels: usize,
        /// Output height.
        oh: usize,
        /// Output width.
        ow: usize,
    },
    /// Elementwise sum of two same-shape inputs (residual connections).
    Add,
    /// Per-channel affine `y = x⊙k + b` over a `[C, H, W]` map — folded
    /// inference-time batch norm, a single MHP on the array.
    Affine {
        /// Per-channel scale.
        k: Vec<f32>,
        /// Per-channel shift.
        b: Vec<f32>,
    },
    /// Uniform scaling `y = c·x` (attention's `1/√d_k`).
    Scale(f32),
    /// A per-channel affine followed by a pointwise nonlinear, executed
    /// as **one** MHP pass: the IPF stage folds the affine's `(k, b)`
    /// into the table segment parameters, so the array evaluates
    /// `f(k·x + b)` without a separate affine pass. Only the optimizer's
    /// fusion pass ([`crate::opt::OptLevel::Fusion`]) emits this op — it
    /// reassociates the multiply-add chain, so CPWL results may differ
    /// from the unfused pair by a few ULPs (exact mode is unchanged).
    AffineNonlinear {
        /// Per-channel scale of the folded affine.
        k: Vec<f32>,
        /// Per-channel shift of the folded affine.
        b: Vec<f32>,
        /// The nonlinear applied to the affine output.
        func: NonlinearFn,
    },
    /// Matrix transpose.
    Transpose,
    /// Copies columns `start .. start+len` of a matrix (head slicing).
    SliceCols {
        /// First column.
        start: usize,
        /// Number of columns.
        len: usize,
    },
    /// Concatenates same-height matrices column-wise (head merging).
    /// Any number of inputs.
    ConcatCols,
    /// A pooling reduction (see [`PoolKind`]).
    Pool(PoolKind),
    /// Quantize→dequantize round trip at a layer boundary, at the
    /// chosen [`Precision`] rung ([`Precision::Int16`] is the paper's
    /// evaluation precision).
    Quantize {
        /// Integer width of the round trip.
        precision: Precision,
    },
    /// Embedding lookup: inputs `[ids, table, pos]` where `ids` is a
    /// `[1, L]` tensor of token indices and `table`/`pos` are the
    /// `[vocab, D]` / `[max_len, D]` tables; output `[L, D]` sums token
    /// and positional rows.
    Embed,
    /// Embedding lookup at a positional offset: as [`Op::Embed`] but row
    /// `i` adds positional row `offset + i` — the decode-step form,
    /// where the single new token sits at absolute position `ctx`.
    EmbedAt {
        /// Absolute position of the first input token.
        offset: usize,
    },
    /// Concatenates same-width matrices row-wise (KV-cache append: a
    /// session's cached `[ctx, D]` rows followed by the step's new
    /// rows). Any number of inputs; a data-layout movement costed at
    /// zero array cycles.
    ConcatRows,
    /// Row-wise causal softmax over a `[M, offset+M]` score matrix: row
    /// `i` softmaxes columns `0 ..= offset + i` (its own and all earlier
    /// positions) and writes exact `0.0` elsewhere. Masked entries never
    /// enter the lowering, so each visible prefix is bit-identical to a
    /// plain [`Op::Softmax`] over that prefix alone — the property the
    /// KV-cache decode path's correctness rests on.
    CausalSoftmax {
        /// Number of context columns preceding the first query row's own
        /// position (`0` for pure prefill).
        offset: usize,
    },
    /// Per-row INT16 quantize→dequantize round trip over a matrix: each
    /// row is scaled independently (per-token activation quantization).
    /// Unlike [`Op::Quantize`], whose single tensor-wide scale couples
    /// every element to the whole tensor's maximum, the row-wise round
    /// trip is row-decomposable — row `i`'s result is a pure function of
    /// row `i` — which is what lets a KV-cached decode step reproduce a
    /// recompute-from-scratch run bit for bit at any context length. The
    /// causal-LM compiler emits this at every layer boundary.
    QuantizeRows,
}

impl Op {
    /// Number of inputs the op expects (`None` = variadic, at least 1).
    fn arity(&self) -> Option<usize> {
        match self {
            Op::Gemm { .. } | Op::Add => Some(2),
            Op::Embed | Op::EmbedAt { .. } => Some(3),
            Op::ConcatCols | Op::ConcatRows => None,
            _ => Some(1),
        }
    }
}

/// One node of a [`Program`]: an op plus where it reads its inputs.
/// Node `i` writes slot `n_inputs + i`; nodes are topologically ordered
/// by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct OpNode {
    /// The operation.
    pub op: Op,
    /// Input operands, in op-defined order.
    pub inputs: Vec<Operand>,
}

/// A compiled whole-network request: program inputs, constants and a
/// topologically-ordered op list. See the [crate docs](crate) for the
/// execution model and a worked construction example.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    mode: EvalMode,
    input_shapes: Vec<Vec<usize>>,
    /// `Arc`-backed so cloning a compiled program — which the serving
    /// layer does once per request — is O(ops), not O(weights).
    consts: Vec<Arc<Tensor>>,
    nodes: Vec<OpNode>,
    /// Input-slot indices holding session-resident state (per-layer KV
    /// tensors), in session-state order. Empty for stateless programs.
    session_inputs: Vec<usize>,
    /// Slot indices whose values the serving layer writes back to the
    /// session after a run (the appended KV tensors), in the same
    /// session-state order as [`Program::session_inputs`].
    session_outputs: Vec<usize>,
    /// Cached at [`ProgramBuilder::finish`]: the serving layer reads
    /// both on every admission/routing decision, and a program is
    /// immutable once built.
    fingerprint: u64,
    modeled_macs: u64,
    /// Pass accounting of the optimizer run that produced this program
    /// (`None` for a freshly-emitted, unoptimized program).
    pub(crate) opt: Option<OptReport>,
}

/// Incrementally builds a [`Program`]; see [`Program::builder`].
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    mode: EvalMode,
    input_shapes: Vec<Vec<usize>>,
    consts: Vec<Arc<Tensor>>,
    nodes: Vec<OpNode>,
    session_inputs: Vec<usize>,
    session_outputs: Vec<usize>,
}

impl ProgramBuilder {
    /// Declares a program input with the given shape, returning its
    /// operand. All inputs must be declared before the first op.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ProgramBuilder::push`] (slot numbering
    /// places all inputs before all op outputs).
    pub fn input(&mut self, shape: &[usize]) -> Operand {
        assert!(
            self.nodes.is_empty(),
            "declare all program inputs before pushing ops"
        );
        self.input_shapes.push(shape.to_vec());
        Operand::Slot(self.input_shapes.len() - 1)
    }

    /// Declares a session-resident input (a KV-cache tensor the serving
    /// layer binds from per-session state rather than from the request),
    /// returning its operand. To the executor a session input is an
    /// ordinary input; the recorded index tells the serving layer which
    /// session tensor to bind, in session-state order.
    ///
    /// # Panics
    ///
    /// As for [`ProgramBuilder::input`].
    pub fn session_input(&mut self, shape: &[usize]) -> Operand {
        let op = self.input(shape);
        if let Operand::Slot(s) = op {
            self.session_inputs.push(s);
        }
        op
    }

    /// Marks an already-declared input as session-resident (the wire
    /// decoder's path; compilers use [`ProgramBuilder::session_input`]).
    ///
    /// # Panics
    ///
    /// Panics on a `Const` operand.
    pub fn mark_session_input(&mut self, x: Operand) {
        match x {
            Operand::Slot(s) => self.session_inputs.push(s),
            Operand::Const(_) => panic!("session inputs must be slots"),
        }
    }

    /// Marks an op output as session state to write back after each run
    /// (the appended KV tensor), in the same session-state order as the
    /// session inputs.
    ///
    /// # Panics
    ///
    /// Panics on a `Const` operand.
    pub fn mark_session_output(&mut self, x: Operand) {
        match x {
            Operand::Slot(s) => self.session_outputs.push(s),
            Operand::Const(_) => panic!("session outputs must be slots"),
        }
    }

    /// Registers a compile-time constant tensor, returning its operand.
    pub fn constant(&mut self, t: Tensor) -> Operand {
        self.constant_shared(Arc::new(t))
    }

    /// Registers an already-shared constant without copying its data —
    /// the zero-copy path compilers and the optimizer use to carry
    /// weights from one program into another.
    pub fn constant_shared(&mut self, t: Arc<Tensor>) -> Operand {
        self.consts.push(t);
        Operand::Const(self.consts.len() - 1)
    }

    /// Appends an op reading `inputs`, returning the operand of its
    /// output slot.
    pub fn push(&mut self, op: Op, inputs: &[Operand]) -> Operand {
        self.nodes.push(OpNode {
            op,
            inputs: inputs.to_vec(),
        });
        Operand::Slot(self.input_shapes.len() + self.nodes.len() - 1)
    }

    /// Validates the program (topology, arities, shape inference) and
    /// returns it.
    ///
    /// # Errors
    ///
    /// Shape or argument errors from [`Program::validate`].
    pub fn finish(self) -> Result<Program> {
        let mut program = Program {
            name: self.name,
            mode: self.mode,
            input_shapes: self.input_shapes,
            consts: self.consts,
            nodes: self.nodes,
            session_inputs: self.session_inputs,
            session_outputs: self.session_outputs,
            fingerprint: 0,
            modeled_macs: 0,
            opt: None,
        };
        program.seal()?;
        Ok(program)
    }
}

impl Program {
    /// Starts building a program evaluated under `mode`.
    pub fn builder(name: &str, mode: EvalMode) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            mode,
            input_shapes: Vec::new(),
            consts: Vec::new(),
            nodes: Vec::new(),
            session_inputs: Vec::new(),
            session_outputs: Vec::new(),
        }
    }

    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The evaluation mode the program was compiled for.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Number of program inputs.
    pub fn n_inputs(&self) -> usize {
        self.input_shapes.len()
    }

    /// Expected shapes of the program inputs.
    pub fn input_shapes(&self) -> &[Vec<usize>] {
        &self.input_shapes
    }

    /// The registered constants (shared, so cloning a program never
    /// copies weight data).
    pub fn consts(&self) -> &[Arc<Tensor>] {
        &self.consts
    }

    /// Pass accounting of the [`Program::optimize`](crate::opt) run that
    /// produced this program; `None` for an unoptimized program. The
    /// batch/serve engines roll these totals into their
    /// `ServingReport`s.
    pub fn opt_report(&self) -> Option<&OptReport> {
        self.opt.as_ref()
    }

    /// Input-slot indices the serving layer binds from per-session state
    /// (per-layer KV tensors), in session-state order. Empty for
    /// stateless programs.
    pub fn session_inputs(&self) -> &[usize] {
        &self.session_inputs
    }

    /// Slot indices written back to the session after each run (the
    /// appended KV tensors), in the same order as
    /// [`Program::session_inputs`].
    pub fn session_outputs(&self) -> &[usize] {
        &self.session_outputs
    }

    /// Whether the program carries session-resident state.
    pub fn is_session(&self) -> bool {
        !self.session_inputs.is_empty() || !self.session_outputs.is_empty()
    }

    /// The topologically-ordered op nodes.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// Number of stages (= ops): the staged scheduler aligns concurrent
    /// programs stage index by stage index.
    pub fn stages(&self) -> usize {
        self.nodes.len()
    }

    /// Shape of the program output (the last op's output).
    ///
    /// # Panics
    ///
    /// Panics on an empty program (the validator rejects those, so any
    /// program obtained from [`ProgramBuilder::finish`] is safe).
    pub fn output_shape(&self) -> Vec<usize> {
        let shapes = self.slot_shapes().expect("validated program");
        shapes.last().expect("non-empty program").clone()
    }

    /// Validates the whole program: every op's arity, operand indices
    /// (slots must be program inputs or *earlier* op outputs), shape
    /// inference across all nodes, mode sanity (a positive, finite
    /// CPWL granularity) and — under a CPWL mode — table coverage of
    /// every nonlinear op (see `TableSet::supports`).
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] or [`TensorError::ShapeMismatch`]
    /// naming the offending op.
    pub fn validate(&self) -> Result<()> {
        if let EvalMode::Cpwl { granularity, .. } = self.mode {
            if !(granularity.is_finite() && granularity > 0.0) {
                return Err(TensorError::InvalidArgument(
                    "program granularity must be positive and finite",
                ));
            }
            // Table coverage: an op referencing a function outside the
            // standard table set must be rejected here, not at run time
            // (where it would fail an engine's whole batch).
            for node in &self.nodes {
                let func = match node.op {
                    Op::Nonlinear(func) | Op::AffineNonlinear { func, .. } => func,
                    _ => continue,
                };
                if !onesa_cpwl::ops::TableSet::supports(func) {
                    return Err(TensorError::InvalidArgument(
                        "program nonlinear not in the CPWL table set",
                    ));
                }
            }
        }
        if self.nodes.is_empty() {
            return Err(TensorError::InvalidArgument(
                "program must contain at least one op",
            ));
        }
        // The cost model (and the array schedules it mirrors) assumes
        // every dimension is at least 1. A zero-sized shape — typically
        // from corrupted wire bytes — must fail typed here, not
        // underflow inside the cycle model.
        if self
            .input_shapes
            .iter()
            .any(|s| s.is_empty() || s.contains(&0))
        {
            return Err(TensorError::InvalidArgument(
                "program input has a zero dimension",
            ));
        }
        if self.consts.iter().any(|c| c.dims().contains(&0)) {
            return Err(TensorError::InvalidArgument(
                "program constant has a zero dimension",
            ));
        }
        // A sparsity attribute is a claim about a constant weight; it is
        // re-checked against the actual tensor here so corrupted or
        // hand-forged attributes (wire bytes are untrusted) fail typed
        // at build time, never inside the sparse kernel or the cost
        // model.
        for node in &self.nodes {
            let Op::Gemm {
                sparsity: Some(s), ..
            } = &node.op
            else {
                continue;
            };
            let Some(&Operand::Const(c)) = node.inputs.get(1) else {
                return Err(TensorError::InvalidArgument(
                    "sparse GEMM weight must be a program constant",
                ));
            };
            let w = self.consts.get(c).ok_or(TensorError::InvalidArgument(
                "op reads an unregistered constant",
            ))?;
            let (nnz, total, cols) = onesa_tensor::sparse::column_block_stats(w, s.block_cols)?;
            if (s.nnz_blocks, s.total_blocks, s.nnz_cols) != (nnz, total, cols) {
                return Err(TensorError::InvalidArgument(
                    "sparsity attribute disagrees with the constant weight",
                ));
            }
        }
        // Session metadata (set by the builder, but also rebuilt by the
        // wire decoder from untrusted bytes): inputs must name declared
        // inputs, outputs must name op-output slots, no repeats.
        for &i in &self.session_inputs {
            if i >= self.input_shapes.len() {
                return Err(TensorError::InvalidArgument(
                    "session input is not a program input",
                ));
            }
        }
        for &s in &self.session_outputs {
            if s < self.input_shapes.len() || s >= self.input_shapes.len() + self.nodes.len() {
                return Err(TensorError::InvalidArgument(
                    "session output is not an op output slot",
                ));
            }
        }
        for list in [&self.session_inputs, &self.session_outputs] {
            let mut seen = list.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != list.len() {
                return Err(TensorError::InvalidArgument(
                    "session slot listed more than once",
                ));
            }
        }
        self.slot_shapes().map(|_| ())
    }

    /// Infers the shape of every slot (inputs first, then one per op).
    ///
    /// # Errors
    ///
    /// As for [`Program::validate`].
    pub fn slot_shapes(&self) -> Result<Vec<Vec<usize>>> {
        let mut shapes: Vec<Vec<usize>> = self.input_shapes.clone();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(arity) = node.op.arity() {
                if node.inputs.len() != arity {
                    return Err(TensorError::InvalidArgument("op arity mismatch"));
                }
            } else if node.inputs.is_empty() {
                return Err(TensorError::InvalidArgument(
                    "variadic op needs at least one input",
                ));
            }
            let mut ins: Vec<&[usize]> = Vec::with_capacity(node.inputs.len());
            for operand in &node.inputs {
                match *operand {
                    Operand::Slot(s) => {
                        if s >= self.input_shapes.len() + i {
                            return Err(TensorError::InvalidArgument(
                                "op reads a slot no earlier node produces",
                            ));
                        }
                        ins.push(&shapes[s]);
                    }
                    Operand::Const(c) => {
                        let t = self.consts.get(c).ok_or(TensorError::InvalidArgument(
                            "op reads an unregistered constant",
                        ))?;
                        ins.push(t.dims());
                    }
                }
            }
            shapes.push(infer_shape(&node.op, &ins)?);
        }
        Ok(shapes)
    }

    /// Modeled per-op execution statistics of a *solo* run on `cfg`
    /// (what each op would cost alone; the staged scheduler reports the
    /// coalesced cost separately).
    ///
    /// # Errors
    ///
    /// As for [`Program::validate`].
    pub fn op_stats(&self, cfg: &ArrayConfig) -> Result<Vec<ExecStats>> {
        let shapes = self.slot_shapes()?;
        let base = self.input_shapes.len();
        Ok(self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let in0 = match node.inputs.first() {
                    Some(&Operand::Slot(s)) => shapes[s].clone(),
                    Some(&Operand::Const(c)) => self.consts[c].dims().to_vec(),
                    None => Vec::new(),
                };
                op_cost(&node.op, &in0, &shapes[base + i], cfg)
            })
            .collect())
    }

    /// Total modeled array work in MAC-equivalents — the admission and
    /// routing weight of a whole-network request (the program analogue
    /// of `Request::modeled_macs`). Cached at build time.
    ///
    /// The weight is the per-op MAC count of [`Program::op_stats`] plus,
    /// under a CPWL mode, the L3 table-preload footprint: two words
    /// (`k`, `b`) per segment per table the program stages (see
    /// `TableSet::preload_segments`). The footprint shrinks with coarser
    /// granularity, so a degraded recompile of the same program models
    /// strictly less admission work — which is what lets overloaded
    /// admission windows fit more degraded requests.
    pub fn modeled_macs(&self) -> u64 {
        self.modeled_macs
    }

    /// The CPWL table-preload MAC-equivalents folded into
    /// [`Program::modeled_macs`]: `2 · segments(func, g)` summed over
    /// every table-staging op. Zero for exact-mode programs.
    pub fn staging_macs(&self) -> u64 {
        let Some(g) = self.mode.granularity() else {
            return 0;
        };
        let preload = |func: NonlinearFn| {
            onesa_cpwl::ops::TableSet::preload_segments(func, g).unwrap_or(0) as u64 * 2
        };
        self.nodes
            .iter()
            .map(|node| match node.op {
                Op::Nonlinear(func) | Op::AffineNonlinear { func, .. } => preload(func),
                Op::Softmax | Op::CausalSoftmax { .. } => {
                    preload(NonlinearFn::Exp) + preload(NonlinearFn::Reciprocal)
                }
                Op::LayerNorm { .. } => preload(NonlinearFn::Rsqrt),
                _ => 0,
            })
            .sum()
    }

    /// Validates the program and fills the cached build-time metadata
    /// (fingerprint + modeled MAC-equivalents).
    fn seal(&mut self) -> Result<()> {
        self.validate()?;
        self.fingerprint = self.compute_fingerprint();
        // MAC counts depend only on shapes, not on the array config.
        let op_macs: u64 = self
            .op_stats(&ArrayConfig::default())?
            .iter()
            .map(|s| s.macs)
            .sum();
        self.modeled_macs = op_macs + self.staging_macs();
        Ok(())
    }

    /// Re-compiles the program at a different CPWL granularity — the
    /// serving layer's degrade ladder. The op list is cloned and every
    /// constant stays `Arc`-shared (O(ops), zero weight copies); the
    /// fingerprint and modeled MAC-equivalents are recomputed, so the
    /// result coalesces, caches and admission-weighs exactly like a
    /// program compiled at `granularity` from scratch.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for an exact-mode program (there
    /// is no table granularity to change) or a non-positive/non-finite
    /// `granularity`.
    pub fn with_granularity(&self, granularity: f32) -> Result<Program> {
        let EvalMode::Cpwl { quantize, .. } = self.mode else {
            return Err(TensorError::InvalidArgument(
                "cannot re-granularize an exact-mode program",
            ));
        };
        let mut program = Program {
            name: self.name.clone(),
            mode: EvalMode::Cpwl {
                granularity,
                quantize,
            },
            input_shapes: self.input_shapes.clone(),
            consts: self.consts.clone(),
            nodes: self.nodes.clone(),
            session_inputs: self.session_inputs.clone(),
            session_outputs: self.session_outputs.clone(),
            fingerprint: 0,
            modeled_macs: 0,
            opt: self.opt.clone(),
        };
        program.seal()?;
        Ok(program)
    }

    /// Modeled energy of each op in joules on `cfg`'s array: the
    /// calibrated Virtex-7 power model (`onesa_resources::power`)
    /// evaluated at the op's MAC utilization for the op's solo seconds,
    /// over the resource cost of a `cfg`-sized ONE-SA. Zero-cycle data
    /// movements cost zero energy.
    ///
    /// # Errors
    ///
    /// As for [`Program::validate`].
    pub fn op_energy(&self, cfg: &ArrayConfig) -> Result<Vec<f64>> {
        let model = PowerModel::virtex7();
        let cost = ArrayResources::calibrated().total(Design::OneSa, cfg.dim, cfg.macs_per_pe);
        Ok(self
            .op_stats(cfg)?
            .iter()
            .map(|s| model.energy_joules(&cost, s.seconds(), s.utilization(cfg)))
            .collect())
    }

    /// Total modeled energy in joules of a solo run on `cfg`
    /// (the sum of [`Program::op_energy`]).
    ///
    /// # Errors
    ///
    /// As for [`Program::validate`].
    pub fn modeled_energy(&self, cfg: &ArrayConfig) -> Result<f64> {
        Ok(self.op_energy(cfg)?.iter().sum())
    }

    /// Structural fingerprint: programs compiled from the same model
    /// under the same mode hash identically, so the serving layer's
    /// weight-affinity router keeps them on one shard where their
    /// per-stage GEMMs and tables coalesce. Cached at build time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The textual op rendering the fingerprint hashes. Ops that predate
    /// the sparsity/precision attributes render exactly as their old
    /// derived `Debug` output did, so every fingerprint minted before
    /// the attributes existed — including the committed wire golden
    /// fixtures — survives the enum growing fields. Sparse GEMMs and
    /// non-INT16 boundaries render their full (new) debug form, which
    /// keeps them fingerprint-distinct from their dense/INT16 shapes.
    fn op_fingerprint_repr(op: &Op) -> String {
        match op {
            Op::Gemm {
                bias,
                sparsity: None,
            } => format!("Gemm {{ bias: {bias:?} }}"),
            Op::Quantize {
                precision: Precision::Int16,
            } => "Quantize".to_string(),
            _ => format!("{op:?}"),
        }
    }

    /// Column-block totals over the program's sparse GEMMs: `(skipped,
    /// total)` blocks. `(0, 0)` for a program with no sparsity
    /// attributes — the serving layer folds these into its
    /// `ServingReport` blocks-skipped accounting.
    pub fn sparse_blocks(&self) -> (u64, u64) {
        let mut skipped = 0u64;
        let mut total = 0u64;
        for node in &self.nodes {
            if let Op::Gemm {
                sparsity: Some(s), ..
            } = &node.op
            {
                skipped += s.skipped_blocks() as u64;
                total += s.total_blocks as u64;
            }
        }
        (skipped, total)
    }

    fn compute_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_u64(h, self.mode.coalesce_key());
        for node in &self.nodes {
            for byte in Self::op_fingerprint_repr(&node.op).bytes() {
                h = fnv_u64(h, u64::from(byte));
            }
            for operand in &node.inputs {
                h = fnv_u64(
                    h,
                    match *operand {
                        Operand::Slot(s) => 0x5105_0000 | s as u64,
                        Operand::Const(c) => 0xC025_0000 | c as u64,
                    },
                );
            }
        }
        for t in &self.consts {
            h = fnv_u64(h, tensor_fingerprint(t));
        }
        // Session-bearing programs (per-context decode steps) share one
        // op list across context lengths, so the structural hash above
        // would alias them in fingerprint-keyed program caches; mix the
        // input shapes and session wiring in — but only for session
        // programs, so every stateless fingerprint (and its golden
        // fixture) stays stable.
        if self.is_session() {
            h = fnv_u64(h, 0x5E55_0000);
            for shape in &self.input_shapes {
                h = fnv_u64(h, 0x5A4E_0000 | shape.len() as u64);
                for &d in shape {
                    h = fnv_u64(h, d as u64);
                }
            }
            for &i in &self.session_inputs {
                h = fnv_u64(h, 0x5E51_0000 | i as u64);
            }
            for &s in &self.session_outputs {
                h = fnv_u64(h, 0x5E50_0000 | s as u64);
            }
        }
        h
    }

    /// Executes the program solo (a one-program staged run on the
    /// default array configuration): the path `onesa-nn`'s `logits` /
    /// `predict` / `pooled_features` wrappers take after compiling.
    ///
    /// # Errors
    ///
    /// Validation errors, input-shape mismatches, or table-construction
    /// failures for the program's granularity.
    pub fn run(
        &self,
        inputs: &[Tensor],
        par: onesa_tensor::parallel::Parallelism,
        tables: &mut crate::TableCache,
    ) -> Result<crate::ProgramRun> {
        let mut staged =
            crate::run_staged(&[(self, inputs)], &ArrayConfig::default(), par, tables)?;
        Ok(staged.runs.remove(0))
    }
}

/// Shape inference for one op given its input shapes.
fn infer_shape(op: &Op, ins: &[&[usize]]) -> Result<Vec<usize>> {
    let matrix = |dims: &[usize]| -> Result<(usize, usize)> {
        match dims {
            [m, n] => Ok((*m, *n)),
            _ => Err(TensorError::NotAMatrix { rank: dims.len() }),
        }
    };
    match op {
        Op::Gemm { bias, .. } => {
            let (m, ka) = matrix(ins[0])?;
            let (kb, n) = matrix(ins[1])?;
            if ka != kb {
                return Err(shape_err(ins[0], ins[1], "plan::Gemm"));
            }
            if let Some(b) = bias {
                if b.len() != n {
                    return Err(shape_err(&[n], &[b.len()], "plan::Gemm bias"));
                }
            }
            Ok(vec![m, n])
        }
        Op::Nonlinear(_) | Op::Quantize { .. } => Ok(ins[0].to_vec()),
        Op::Softmax | Op::QuantizeRows => {
            matrix(ins[0])?;
            Ok(ins[0].to_vec())
        }
        Op::LayerNorm { gamma, beta, .. } => {
            let (_, n) = matrix(ins[0])?;
            if gamma.len() != n || beta.len() != n {
                return Err(shape_err(
                    &[n],
                    &[gamma.len(), beta.len()],
                    "plan::LayerNorm",
                ));
            }
            Ok(ins[0].to_vec())
        }
        Op::Im2col(geo) => match *ins[0] {
            [c, h, w] if c == geo.in_channels => {
                let (oh, ow) = geo.output_hw(h, w)?;
                Ok(vec![oh * ow, geo.patch_len()])
            }
            _ => Err(shape_err(ins[0], &[geo.in_channels, 0, 0], "plan::Im2col")),
        },
        Op::Col2im { channels, oh, ow } => {
            let (rows, ch) = matrix(ins[0])?;
            if rows != oh * ow || ch != *channels {
                return Err(shape_err(ins[0], &[oh * ow, *channels], "plan::Col2im"));
            }
            Ok(vec![*channels, *oh, *ow])
        }
        Op::Add => {
            if ins[0] != ins[1] {
                return Err(shape_err(ins[0], ins[1], "plan::Add"));
            }
            Ok(ins[0].to_vec())
        }
        Op::Affine { k, b } => match *ins[0] {
            [c, h, w] if k.len() == c && b.len() == c => Ok(vec![c, h, w]),
            _ => Err(shape_err(ins[0], &[k.len(), 0, 0], "plan::Affine")),
        },
        Op::AffineNonlinear { k, b, .. } => match *ins[0] {
            [c, h, w] if k.len() == c && b.len() == c => Ok(vec![c, h, w]),
            _ => Err(shape_err(ins[0], &[k.len(), 0, 0], "plan::AffineNonlinear")),
        },
        Op::Scale(_) => Ok(ins[0].to_vec()),
        Op::Transpose => {
            let (m, n) = matrix(ins[0])?;
            Ok(vec![n, m])
        }
        Op::SliceCols { start, len } => {
            let (m, n) = matrix(ins[0])?;
            if start + len > n || *len == 0 {
                return Err(shape_err(ins[0], &[m, start + len], "plan::SliceCols"));
            }
            Ok(vec![m, *len])
        }
        Op::ConcatCols => {
            let (m, mut total) = matrix(ins[0])?;
            for dims in &ins[1..] {
                let (mi, ni) = matrix(dims)?;
                if mi != m {
                    return Err(shape_err(ins[0], dims, "plan::ConcatCols"));
                }
                total += ni;
            }
            Ok(vec![m, total])
        }
        Op::Pool(PoolKind::GlobalAvg) => match *ins[0] {
            [c, _, _] => Ok(vec![1, c]),
            _ => Err(TensorError::NotAMatrix { rank: ins[0].len() }),
        },
        Op::Pool(PoolKind::MeanRows) => {
            let (_, d) = matrix(ins[0])?;
            Ok(vec![1, d])
        }
        Op::Embed => {
            let (one, l) = matrix(ins[0])?;
            let (_, d) = matrix(ins[1])?;
            let (max_len, d2) = matrix(ins[2])?;
            if one != 1 || d != d2 || l > max_len {
                return Err(shape_err(ins[0], ins[1], "plan::Embed"));
            }
            Ok(vec![l, d])
        }
        Op::EmbedAt { offset } => {
            let (one, l) = matrix(ins[0])?;
            let (_, d) = matrix(ins[1])?;
            let (max_len, d2) = matrix(ins[2])?;
            if one != 1 || d != d2 || l + offset > max_len {
                return Err(shape_err(ins[0], ins[2], "plan::EmbedAt"));
            }
            Ok(vec![l, d])
        }
        Op::ConcatRows => {
            let (mut total, n) = matrix(ins[0])?;
            for dims in &ins[1..] {
                let (mi, ni) = matrix(dims)?;
                if ni != n {
                    return Err(shape_err(ins[0], dims, "plan::ConcatRows"));
                }
                total += mi;
            }
            Ok(vec![total, n])
        }
        Op::CausalSoftmax { offset } => {
            let (m, n) = matrix(ins[0])?;
            if offset + m != n {
                return Err(shape_err(&[m, offset + m], &[m, n], "plan::CausalSoftmax"));
            }
            Ok(ins[0].to_vec())
        }
    }
}

fn shape_err(lhs: &[usize], rhs: &[usize], op: &'static str) -> TensorError {
    TensorError::ShapeMismatch {
        lhs: lhs.to_vec(),
        rhs: rhs.to_vec(),
        op,
    }
}

/// Modeled solo cost of one op. GEMM-bearing ops use the tiled GEMM
/// model; nonlinears an IPF + MHP pass; softmax/layer-norm their
/// composite lowerings; `Affine`/`Scale`/`Add` a bare MHP pass; pooling
/// a GEMM against a constant mean vector; pure data movements
/// (im2col/col2im/transpose/slice/concat/quantize/embed) cost zero
/// array cycles.
pub(crate) fn op_cost(op: &Op, in0: &[usize], out: &[usize], cfg: &ArrayConfig) -> ExecStats {
    let mat_or_row = |dims: &[usize]| -> (usize, usize) {
        match dims {
            [m, n] => (*m, *n),
            _ => (1, dims.iter().product()),
        }
    };
    match op {
        Op::Gemm { sparsity, .. } => {
            let (m, k) = mat_or_row(in0);
            let n = out[1];
            match sparsity {
                // The sparse kernel packs and sweeps only the surviving
                // columns, so the op costs exactly a dense `m × k ×
                // nnz_cols` product — this single crediting point is
                // what `modeled_macs`/`modeled_energy` (and through
                // them `SizeCapped` admission and `EnergyAware`
                // routing) all read.
                Some(s) if s.nnz_cols == 0 => ExecStats::new(cfg, CycleBreakdown::default(), 0, 0),
                Some(s) => analytic::gemm_stats(cfg, m, k, s.nnz_cols),
                None => analytic::gemm_stats(cfg, m, k, n),
            }
        }
        Op::Nonlinear(_) => {
            let (m, n) = mat_or_row(in0);
            analytic::nonlinear_stats(cfg, m, n)
        }
        // The fused affine+nonlinear is exactly one IPF + MHP pass: the
        // affine's (k, b) fold into the fetched segment parameters, so
        // the separate affine MHP the unfused pair would cost is gone.
        Op::AffineNonlinear { .. } => {
            let (m, n) = mat_or_row(in0);
            analytic::nonlinear_stats(cfg, m, n)
        }
        // A causal softmax is costed like a full-width softmax over its
        // `[M, ctx+M]` scores: the width term grows with the session's
        // context, so a decode step's modeled MACs track how much cache
        // its attention actually reads.
        Op::Softmax | Op::CausalSoftmax { .. } => {
            let (m, n) = mat_or_row(in0);
            analytic::softmax_stats(cfg, m, n)
        }
        Op::LayerNorm { .. } => {
            let (m, n) = mat_or_row(in0);
            analytic::norm_stats(cfg, m, n)
        }
        Op::Add | Op::Scale(_) | Op::Affine { .. } => {
            let (m, n) = mat_or_row(in0);
            analytic::mhp_pass_stats(cfg, m, n)
        }
        Op::Pool(PoolKind::GlobalAvg) => {
            // [C, H·W] · [H·W, 1] mean reduction.
            let (c, hw) = (in0[0], in0[1] * in0[2]);
            analytic::gemm_stats(cfg, c, hw, 1)
        }
        Op::Pool(PoolKind::MeanRows) => {
            // [1, L] · [L, D] mean reduction.
            let (l, d) = (in0[0], in0[1]);
            analytic::gemm_stats(cfg, 1, l, d)
        }
        Op::Im2col(_)
        | Op::Col2im { .. }
        | Op::Transpose
        | Op::SliceCols { .. }
        | Op::ConcatCols
        | Op::ConcatRows
        | Op::Quantize { .. }
        | Op::QuantizeRows
        | Op::Embed
        | Op::EmbedAt { .. } => ExecStats::new(cfg, CycleBreakdown::default(), 0, 0),
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv_u64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for i in 0..8 {
        h = (h ^ ((v >> (8 * i)) & 0xff)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Cheap content hash (FNV-1a over dims and value bit patterns) used to
/// bucket constant tensors before exact equality checks — the same
/// scheme `onesa_core::batch` uses for shared-weight coalescing.
pub fn tensor_fingerprint(t: &Tensor) -> u64 {
    let mut h = FNV_OFFSET;
    for d in t.dims() {
        h = (h ^ *d as u64).wrapping_mul(FNV_PRIME);
    }
    for v in t.as_slice() {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_tensor::rng::Pcg32;

    fn mlp(mode: EvalMode) -> Program {
        let mut rng = Pcg32::seed_from_u64(1);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let mut b = Program::builder("mlp", mode);
        let x = b.input(&[2, 6]);
        let w1 = b.constant(w1);
        let w2 = b.constant(w2);
        let h = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w1],
        );
        let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
        b.push(
            Op::Gemm {
                bias: Some(vec![0.1, 0.2, 0.3]),
                sparsity: None,
            },
            &[g, w2],
        );
        b.finish().unwrap()
    }

    #[test]
    fn builder_shapes_and_cost() {
        let p = mlp(EvalMode::Exact);
        assert_eq!(p.stages(), 3);
        assert_eq!(p.n_inputs(), 1);
        assert_eq!(p.output_shape(), &[2, 3]);
        let shapes = p.slot_shapes().unwrap();
        assert_eq!(shapes, vec![vec![2, 6], vec![2, 4], vec![2, 4], vec![2, 3]]);
        // 2·6·4 + 2·(2·4) nonlinear MACs + 2·4·3 (exact mode: no
        // table-preload term).
        assert_eq!(p.modeled_macs(), 48 + 16 + 24);
        assert_eq!(p.staging_macs(), 0);
        let stats = p.op_stats(&ArrayConfig::default()).unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[1].nonlinear_evals, 8);
    }

    #[test]
    fn cpwl_modeled_macs_include_the_table_preload_footprint() {
        let cpwl = |g| {
            mlp(EvalMode::Cpwl {
                granularity: g,
                quantize: true,
            })
        };
        let exact = mlp(EvalMode::Exact);
        let fine = cpwl(0.25);
        let coarse = cpwl(1.0);
        // One GELU table staged: 2 words per segment.
        let segs = |g| onesa_cpwl::ops::TableSet::preload_segments(NonlinearFn::Gelu, g).unwrap();
        assert_eq!(fine.staging_macs(), 2 * segs(0.25) as u64);
        assert_eq!(
            fine.modeled_macs(),
            exact.modeled_macs() + fine.staging_macs()
        );
        // Coarser granularity models strictly less admission work.
        assert!(coarse.modeled_macs() < fine.modeled_macs());
        assert!(coarse.modeled_macs() > exact.modeled_macs());
        // The preload term is a modeled admission weight, not an op
        // cost: per-op stats are unchanged.
        assert_eq!(
            fine.op_stats(&ArrayConfig::default()).unwrap(),
            exact.op_stats(&ArrayConfig::default()).unwrap()
        );
    }

    #[test]
    fn with_granularity_recompiles_sharing_consts() {
        let p = mlp(EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        });
        let d = p.with_granularity(1.0).unwrap();
        assert_eq!(d.mode().granularity(), Some(1.0));
        assert_eq!(d.stages(), p.stages());
        assert_eq!(d.name(), p.name());
        // Consts are Arc-shared, not copied.
        for (a, b) in p.consts().iter().zip(d.consts()) {
            assert!(Arc::ptr_eq(a, b));
        }
        // The recompile is indistinguishable from compiling at the
        // coarser granularity directly.
        let oracle = mlp(EvalMode::Cpwl {
            granularity: 1.0,
            quantize: true,
        });
        assert_eq!(d.fingerprint(), oracle.fingerprint());
        assert_eq!(d.modeled_macs(), oracle.modeled_macs());
        assert!(d.modeled_macs() < p.modeled_macs());
        // Quantize flag carries over; exact-mode programs are not
        // degradable; bad granularities are rejected.
        assert_eq!(d.mode(), oracle.mode());
        assert!(mlp(EvalMode::Exact).with_granularity(1.0).is_err());
        assert!(p.with_granularity(0.0).is_err());
        assert!(p.with_granularity(f32::NAN).is_err());
    }

    #[test]
    fn op_energy_tracks_the_power_model() {
        let p = mlp(EvalMode::Exact);
        let cfg = ArrayConfig::default();
        let energy = p.op_energy(&cfg).unwrap();
        assert_eq!(energy.len(), p.stages());
        assert!(energy.iter().all(|&e| e > 0.0));
        let total = p.modeled_energy(&cfg).unwrap();
        assert!((total - energy.iter().sum::<f64>()).abs() < 1e-18);
        // Energy = power × time, bounded by the design's full-activity
        // power over the program's modeled seconds.
        let model = PowerModel::virtex7();
        let cost = ArrayResources::calibrated().total(Design::OneSa, cfg.dim, cfg.macs_per_pe);
        let seconds: f64 = p.op_stats(&cfg).unwrap().iter().map(|s| s.seconds()).sum();
        assert!(total <= model.power_watts(&cost) * seconds + 1e-18);
        assert!(total >= model.power_at_utilization(&cost, 0.0) * seconds - 1e-18);
    }

    #[test]
    fn validator_rejects_malformed_programs() {
        // Mismatched GEMM inner dims.
        let mut b = Program::builder("bad", EvalMode::Exact);
        let x = b.input(&[2, 5]);
        let w = b.constant(Tensor::zeros(&[6, 3]));
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w],
        );
        assert!(b.finish().is_err());

        // Empty program.
        let b = Program::builder("empty", EvalMode::Exact);
        assert!(b.finish().is_err());

        // Bad granularity.
        let mut b = Program::builder(
            "bad-g",
            EvalMode::Cpwl {
                granularity: -1.0,
                quantize: true,
            },
        );
        let x = b.input(&[2, 2]);
        b.push(Op::Nonlinear(NonlinearFn::Relu), &[x]);
        assert!(b.finish().is_err());

        // Wrong arity.
        let mut b = Program::builder("arity", EvalMode::Exact);
        let x = b.input(&[2, 2]);
        b.push(Op::Add, &[x]);
        assert!(b.finish().is_err());

        // Bias length mismatch.
        let mut b = Program::builder("bias", EvalMode::Exact);
        let x = b.input(&[2, 2]);
        let w = b.constant(Tensor::zeros(&[2, 3]));
        b.push(
            Op::Gemm {
                bias: Some(vec![0.0; 2]),
                sparsity: None,
            },
            &[x, w],
        );
        assert!(b.finish().is_err());
    }

    #[test]
    fn cpwl_programs_reject_functions_outside_the_table_set() {
        // Silu has no table in the standard set: a CPWL-mode program
        // using it must fail validation (not poison a batch at run
        // time) — exact mode evaluates it directly and stays fine.
        let build = |mode: EvalMode| {
            let mut b = Program::builder("silu", mode);
            let x = b.input(&[1, 4]);
            b.push(Op::Nonlinear(NonlinearFn::Silu), &[x]);
            b.finish()
        };
        assert!(build(EvalMode::Cpwl {
            granularity: 0.25,
            quantize: false,
        })
        .is_err());
        let exact = build(EvalMode::Exact).unwrap();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 0.5, 2.0], &[1, 4]).unwrap();
        let run = exact
            .run(
                std::slice::from_ref(&x),
                onesa_tensor::parallel::Parallelism::Sequential,
                &mut crate::TableCache::new(),
            )
            .unwrap();
        assert_eq!(run.output, x.map(|v| NonlinearFn::Silu.eval(v)));
    }

    #[test]
    fn fingerprints_distinguish_programs() {
        let a = mlp(EvalMode::Exact);
        let b = mlp(EvalMode::Exact);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = mlp(EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        });
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn movement_ops_infer_shapes() {
        let geo = Conv2dGeometry {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut b = Program::builder(
            "conv",
            EvalMode::Cpwl {
                granularity: 0.25,
                quantize: false,
            },
        );
        let x = b.input(&[2, 4, 4]);
        let wt = b.constant(Tensor::zeros(&[geo.patch_len(), 3]));
        let cols = b.push(Op::Im2col(geo), &[x]);
        let prod = b.push(
            Op::Gemm {
                bias: Some(vec![0.0; 3]),
                sparsity: None,
            },
            &[cols, wt],
        );
        let fm = b.push(
            Op::Col2im {
                channels: 3,
                oh: 4,
                ow: 4,
            },
            &[prod],
        );
        let aff = b.push(
            Op::Affine {
                k: vec![1.0; 3],
                b: vec![0.0; 3],
            },
            &[fm],
        );
        let r = b.push(Op::Nonlinear(NonlinearFn::Relu), &[aff]);
        let pooled = b.push(Op::Pool(PoolKind::GlobalAvg), &[r]);
        b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[pooled],
        );
        let p = b.finish().unwrap();
        assert_eq!(p.output_shape(), &[1, 3]);
        let shapes = p.slot_shapes().unwrap();
        assert_eq!(shapes[1], vec![16, geo.patch_len()]);
        assert_eq!(shapes[3], vec![3, 4, 4]);
    }

    /// A weight whose second 4-column block is all zero, plus the
    /// matching (and a deliberately wrong) sparsity attribute.
    fn sparse_weight_and_attr() -> (Tensor, GemmSparsity) {
        let mut rng = Pcg32::seed_from_u64(31);
        let mut w = rng.randn(&[3, 8], 1.0);
        for r in 0..3 {
            for c in 4..8 {
                w.as_mut_slice()[r * 8 + c] = 0.0;
            }
        }
        let attr = GemmSparsity {
            block_cols: 4,
            nnz_blocks: 1,
            total_blocks: 2,
            nnz_cols: 4,
        };
        (w, attr)
    }

    #[test]
    fn sparsity_attribute_validates_against_the_weight() {
        let (w, attr) = sparse_weight_and_attr();
        let mut b = Program::builder("sparse-ok", EvalMode::Exact);
        let x = b.input(&[2, 3]);
        let wc = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: Some(attr),
            },
            &[x, wc],
        );
        let p = b.finish().unwrap();
        assert_eq!(p.sparse_blocks(), (1, 2));
        // Sparse credit: half the columns, half the modeled MACs.
        assert_eq!(p.modeled_macs(), 2 * 3 * 4);
    }

    #[test]
    fn disagreeing_sparsity_attribute_fails_typed() {
        let (w, attr) = sparse_weight_and_attr();
        let wrong = GemmSparsity {
            nnz_blocks: 2,
            nnz_cols: 8,
            ..attr
        };
        let mut b = Program::builder("sparse-bad", EvalMode::Exact);
        let x = b.input(&[2, 3]);
        let wc = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: Some(wrong),
            },
            &[x, wc],
        );
        let err = b.finish().unwrap_err();
        assert!(
            err.to_string().contains("disagrees"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn sparsity_on_a_non_const_weight_fails_typed() {
        let (_, attr) = sparse_weight_and_attr();
        let mut b = Program::builder("sparse-slot", EvalMode::Exact);
        let x = b.input(&[2, 3]);
        let y = b.input(&[3, 8]);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: Some(attr),
            },
            &[x, y],
        );
        let err = b.finish().unwrap_err();
        assert!(
            err.to_string().contains("constant"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn dense_and_sparse_fingerprints_differ_and_int8_is_distinct() {
        let (w, attr) = sparse_weight_and_attr();
        let build = |sparsity| {
            let mut b = Program::builder("fp", EvalMode::Exact);
            let x = b.input(&[2, 3]);
            let wc = b.constant(w.clone());
            b.push(
                Op::Gemm {
                    bias: None,
                    sparsity,
                },
                &[x, wc],
            );
            b.finish().unwrap()
        };
        assert_ne!(
            build(None).fingerprint(),
            build(Some(attr)).fingerprint(),
            "sparse attribute must be fingerprint-visible"
        );
        let quant = |precision| {
            let mut b = Program::builder("fp-q", EvalMode::Exact);
            let x = b.input(&[2, 3]);
            b.push(Op::Quantize { precision }, &[x]);
            b.finish().unwrap()
        };
        assert_ne!(
            quant(Precision::Int16).fingerprint(),
            quant(Precision::Int8).fingerprint(),
            "precision rung must be fingerprint-visible"
        );
    }
}
