//! Property-based tests for the tensor substrate.

use onesa_tensor::fixed::QFormat;
use onesa_tensor::quant::{self, QuantTensor};
use onesa_tensor::{gemm, Tensor};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).unwrap())
    })
}

proptest! {
    // Pinned case count: CI runs are deterministic and reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(t in small_matrix(8)) {
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, tt);
    }

    #[test]
    fn matmul_identity_left_right(t in small_matrix(8)) {
        let (m, n) = t.shape().as_matrix().unwrap();
        let left = gemm::matmul(&Tensor::eye(m), &t).unwrap();
        let right = gemm::matmul(&t, &Tensor::eye(n)).unwrap();
        for (a, b) in t.as_slice().iter().zip(left.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in t.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(6), b in small_matrix(6), c in small_matrix(6)
    ) {
        // Force compatible shapes by reusing dims of `a`.
        let (m, k) = a.shape().as_matrix().unwrap();
        let b = Tensor::from_vec(
            b.as_slice().iter().cycle().take(k * 5).copied().collect(), &[k, 5]).unwrap();
        let c = Tensor::from_vec(
            c.as_slice().iter().cycle().take(k * 5).copied().collect(), &[k, 5]).unwrap();
        let lhs = gemm::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = gemm::matmul(&a, &b).unwrap().add(&gemm::matmul(&a, &c).unwrap()).unwrap();
        let _ = m;
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            let tol = 1e-2f32.max(x.abs() * 1e-4);
            prop_assert!((x - y).abs() < tol, "{} vs {}", x, y);
        }
    }

    #[test]
    fn mhp_equals_mul_plus_add(x in small_matrix(8)) {
        let k = x.map(|v| v * 0.5 - 1.0);
        let b = x.map(|v| -v * 0.25 + 2.0);
        let direct = gemm::mhp(&x, &k, &b).unwrap();
        let composed = x.mul(&k).unwrap().add(&b).unwrap();
        prop_assert_eq!(direct, composed);
    }

    #[test]
    fn tile_round_trip(t in small_matrix(10), th in 1usize..5, tw in 1usize..5) {
        let (rows, cols) = t.shape().as_matrix().unwrap();
        let mut rebuilt = Tensor::zeros(&[rows, cols]);
        let mut r0 = 0;
        while r0 < rows {
            let mut c0 = 0;
            while c0 < cols {
                let tile = t.tile_padded(r0, c0, th, tw).unwrap();
                rebuilt.tile_write(r0, c0, &tile).unwrap();
                c0 += tw;
            }
            r0 += th;
        }
        prop_assert_eq!(t, rebuilt);
    }

    #[test]
    fn quantization_error_bounded(t in small_matrix(8)) {
        let q = QuantTensor::quantize(&t);
        let err = quant::round_trip_error(&t);
        // Slack beyond scale/2 covers f32 rounding in the x/scale divide and
        // the dequantize multiply (each up to ~|q|·eps ≈ 0.004·scale).
        prop_assert!(err.max_abs <= q.scale() * 0.51 + 1e-6,
            "max_abs {} scale {}", err.max_abs, q.scale());
    }

    #[test]
    fn qformat_round_trip_error_bounded(x in -60.0f32..60.0, bits in 4u8..12) {
        let q = QFormat::new(bits);
        prop_assume!(x.abs() < q.max_value());
        let back = q.to_f32(q.from_f32(x));
        prop_assert!((back - x).abs() <= q.resolution() * 0.5 + 1e-5);
    }

    #[test]
    fn qformat_segment_shift_matches_float(
        x in -1.9f32..1.9, log2_seg in -4i8..0
    ) {
        let q = QFormat::new(8);
        let x_min = -2.0f32;
        let seg = (2.0f32).powi(log2_seg as i32);
        let xq = q.from_f32(x);
        let got = q.segment_shift(xq, q.from_f32(x_min), log2_seg);
        // Compare against the float floor computed on the *quantized* value,
        // which is what the hardware sees.
        let expect = ((q.to_f32(xq) - x_min) / seg).floor() as i32;
        prop_assert_eq!(got, expect);
    }
}
