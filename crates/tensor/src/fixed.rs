//! Q-format fixed-point scalar arithmetic.
//!
//! The paper quantizes networks and the systolic array to INT16 and makes
//! the L3 data-addressing module compute CPWL segment indices by *bit
//! shifting*, which only works because segment lengths are powers of two.
//! [`QFormat`] captures an `i16` interpretation with a fixed number of
//! fractional bits and provides the saturating arithmetic the hardware
//! datapath would implement.

use std::fmt;

/// A fixed-point interpretation of `i16` with `frac_bits` fractional bits
/// (a "Q-format", e.g. Q8.8 for `frac_bits = 8`).
///
/// # Example
///
/// ```
/// use onesa_tensor::fixed::QFormat;
///
/// let q = QFormat::new(8);
/// let x = q.from_f32(1.5);
/// assert_eq!(x, 384); // 1.5 * 2^8
/// assert_eq!(q.to_f32(x), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    frac_bits: u8,
}

impl QFormat {
    /// Creates a Q-format with the given number of fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 15` (an `i16` has only 15 magnitude bits).
    pub fn new(frac_bits: u8) -> Self {
        assert!(
            frac_bits <= 15,
            "i16 Q-format supports at most 15 fractional bits"
        );
        QFormat { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Value of one least-significant bit.
    pub fn resolution(&self) -> f32 {
        1.0 / (1i32 << self.frac_bits) as f32
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        self.to_f32(i16::MAX)
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f32 {
        self.to_f32(i16::MIN)
    }

    /// Converts an `f32` to fixed point with round-to-nearest and
    /// saturation at the `i16` range.
    pub fn from_f32(&self, x: f32) -> i16 {
        let scaled = x * (1i64 << self.frac_bits) as f32;
        let rounded = scaled.round();
        if rounded >= i16::MAX as f32 {
            i16::MAX
        } else if rounded <= i16::MIN as f32 {
            i16::MIN
        } else {
            rounded as i16
        }
    }

    /// Converts a fixed-point value back to `f32` (exact).
    pub fn to_f32(&self, x: i16) -> f32 {
        x as f32 / (1i32 << self.frac_bits) as f32
    }

    /// Saturating fixed-point addition.
    pub fn add(&self, a: i16, b: i16) -> i16 {
        a.saturating_add(b)
    }

    /// Fixed-point multiplication with a widening `i32` intermediate,
    /// rounding and saturation — the operation one DSP slice performs.
    pub fn mul(&self, a: i16, b: i16) -> i16 {
        let wide = a as i32 * b as i32;
        let half = 1i32 << (self.frac_bits.max(1) - 1);
        let rounded = if self.frac_bits == 0 {
            wide
        } else {
            (wide + half) >> self.frac_bits
        };
        saturate_i32(rounded)
    }

    /// Fused multiply-add `a*b + c` with a single widening intermediate,
    /// matching the PE's MAC unit.
    pub fn mac(&self, a: i16, b: i16, c: i16) -> i16 {
        let wide = a as i32 * b as i32;
        let half = 1i32 << (self.frac_bits.max(1) - 1);
        let prod = if self.frac_bits == 0 {
            wide
        } else {
            (wide + half) >> self.frac_bits
        };
        saturate_i32(prod.saturating_add(c as i32))
    }

    /// CPWL segment index of `x` for segments of length `2^log2_seg`
    /// starting at `x_min`, computed with the hardware shift trick:
    /// `(x_q - xmin_q) >> (frac_bits + log2_seg)`.
    ///
    /// `log2_seg` is the base-2 logarithm of the segment length in *real*
    /// units (e.g. `-2` for granularity 0.25). The result is **not**
    /// capped; capping is the scale module's job
    /// (see `onesa-cpwl`).
    pub fn segment_shift(&self, x: i16, x_min: i16, log2_seg: i8) -> i32 {
        let delta = x as i32 - x_min as i32;
        let shift = self.frac_bits as i32 + log2_seg as i32;
        debug_assert!(shift >= 0, "segment smaller than fixed-point resolution");
        // Arithmetic right shift floors toward negative infinity, exactly
        // like the hardware barrel shifter on two's-complement data.
        delta >> shift
    }
}

impl Default for QFormat {
    /// Q8.8 — the balance of range (±128) and resolution (1/256) used for
    /// activations throughout the reproduction.
    fn default() -> Self {
        QFormat::new(8)
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", 15 - self.frac_bits, self.frac_bits)
    }
}

fn saturate_i32(x: i32) -> i16 {
    if x > i16::MAX as i32 {
        i16::MAX
    } else if x < i16::MIN as i32 {
        i16::MIN
    } else {
        x as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        let q = QFormat::new(8);
        for x in [-2.0f32, -0.5, 0.0, 0.25, 1.0, 100.0] {
            assert_eq!(q.to_f32(q.from_f32(x)), x);
        }
    }

    #[test]
    fn saturation() {
        let q = QFormat::new(8);
        assert_eq!(q.from_f32(1e9), i16::MAX);
        assert_eq!(q.from_f32(-1e9), i16::MIN);
        assert_eq!(q.add(i16::MAX, 1), i16::MAX);
        assert_eq!(q.mul(i16::MAX, i16::MAX), i16::MAX);
    }

    #[test]
    fn mul_matches_float_within_resolution() {
        let q = QFormat::new(10);
        let cases = [(1.5f32, 2.25f32), (-3.0, 0.5), (0.125, 0.125), (-1.0, -1.0)];
        for (a, b) in cases {
            let got = q.to_f32(q.mul(q.from_f32(a), q.from_f32(b)));
            assert!((got - a * b).abs() <= q.resolution(), "{a}*{b}: {got}");
        }
    }

    #[test]
    fn mac_matches_mul_then_add() {
        let q = QFormat::new(8);
        let (a, b, c) = (q.from_f32(1.25), q.from_f32(-2.5), q.from_f32(0.75));
        assert_eq!(q.mac(a, b, c), q.add(q.mul(a, b), c));
    }

    #[test]
    fn segment_shift_matches_float_floor() {
        let q = QFormat::new(8);
        // Segments of length 0.25 starting at -2.0.
        let x_min = q.from_f32(-2.0);
        for (x, expect) in [(-2.0f32, 0), (-1.8, 0), (-1.75, 1), (0.0, 8), (1.99, 15)] {
            let idx = q.segment_shift(q.from_f32(x), x_min, -2);
            assert_eq!(idx, expect, "x = {x}");
        }
    }

    #[test]
    fn segment_shift_negative_below_range() {
        let q = QFormat::new(8);
        let x_min = q.from_f32(-2.0);
        // Below the range the raw index goes negative; capping happens later.
        assert!(q.segment_shift(q.from_f32(-3.0), x_min, -2) < 0);
    }

    #[test]
    fn display_names_q_format() {
        assert_eq!(QFormat::new(8).to_string(), "Q7.8");
        assert_eq!(QFormat::new(12).to_string(), "Q3.12");
    }

    #[test]
    #[should_panic]
    fn too_many_frac_bits_panics() {
        let _ = QFormat::new(16);
    }
}
