//! Parallel execution backend for the reference kernels.
//!
//! The [`gemm`] module defines *what* the array computes; this
//! module computes the same values *fast* on the host CPU so the engine can
//! serve real traffic. Two ideas, mirroring how throughput is obtained in
//! systolic-array designs themselves:
//!
//! 1. **Cache/register blocking** — [`matmul`] packs `B` into column panels
//!    and drives a `6 × 48` register-tiled microkernel, exactly the
//!    output-stationary tiling a systolic schedule performs in hardware.
//! 2. **Row-panel threading** — the output matrix is split into disjoint
//!    row panels, one per worker, executed under [`std::thread::scope`]
//!    (no external dependencies).
//!
//! # Bit-identical by construction
//!
//! Every output element `C[i][j]` is accumulated over `k` in ascending
//! order, one fused multiply-add ([`f32::mul_add`], a hardware MAC) per
//! step, skipping steps where `A[i][k] == 0.0` — precisely the operation
//! sequence of the sequential reference
//! [`gemm::matmul`]. Row/column blocking and
//! the thread count only change *which core* performs a given output row,
//! never the floating-point op sequence behind an element, so results are
//! bit-identical to the reference for **every** [`Parallelism`] setting.
//! The integration suite (`tests/integration_parallel.rs`) asserts this
//! across thread counts 1/2/4.
//!
//! # Example
//!
//! ```
//! use onesa_tensor::{parallel, parallel::Parallelism, rng::Pcg32, gemm};
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let a = rng.randn(&[50, 30], 1.0);
//! let b = rng.randn(&[30, 40], 1.0);
//! let fast = parallel::matmul(&a, &b, Parallelism::Threads(2))?;
//! assert_eq!(fast, gemm::matmul(&a, &b)?); // bit-identical
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::{gemm, Result, Tensor, TensorError};
use std::num::NonZeroUsize;
use std::thread;

/// How many rows of `C` one microkernel call produces.
const MR: usize = 4;
/// Microkernel width (three 512-bit vectors of `f32`). `B` is packed into
/// panels of exactly this width — the last panel zero-padded — so one
/// kernel shape serves every column. The `MR × NR` accumulator tile plus
/// one panel line stay well inside the vector register file.
const NR: usize = 48;
/// K-blocking depth: one `KC × NR` packed panel is 24 KiB — it lives in
/// L1 while every row block sweeps it.
const KC: usize = 128;

/// How kernel work is spread across CPU cores.
///
/// The default is [`Parallelism::Sequential`], which dispatches to the
/// plain reference kernels — engines opt in to the blocked/threaded
/// backend explicitly. All settings produce bit-identical results (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// The sequential reference kernels, unchanged.
    #[default]
    Sequential,
    /// The blocked backend on exactly `n` worker threads (`0` is treated
    /// as `1`). `Threads(1)` runs the blocked kernel without spawning.
    Threads(usize),
    /// The blocked backend on [`std::thread::available_parallelism`]
    /// workers.
    Auto,
}

impl Parallelism {
    /// The number of worker threads this setting resolves to.
    ///
    /// Requests beyond the machine's [`available_parallelism`] are capped
    /// to it: on one core, oversubscribed workers only fight each other
    /// for cache, so `Threads(4)` degrades gracefully to the blocked
    /// kernel on however many cores exist.
    ///
    /// [`available_parallelism`]: std::thread::available_parallelism
    pub fn worker_count(&self) -> usize {
        let cores = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        match *self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.clamp(1, cores),
            Parallelism::Auto => cores,
        }
    }

    /// Short label for reports (`seq`, `threads(4)`, `auto(8)`).
    pub fn label(&self) -> String {
        match *self {
            Parallelism::Sequential => "seq".to_string(),
            Parallelism::Threads(n) => format!("threads({})", n.max(1)),
            Parallelism::Auto => format!("auto({})", self.worker_count()),
        }
    }
}

/// Computes `A · B` under the given parallelism setting.
///
/// [`Parallelism::Sequential`] calls [`gemm::matmul`] directly; the other
/// settings run the blocked backend, whose results are bit-identical to it.
///
/// # Errors
///
/// Shape errors as in [`gemm::matmul`].
pub fn matmul(a: &Tensor, b: &Tensor, par: Parallelism) -> Result<Tensor> {
    if let Parallelism::Sequential = par {
        return gemm::matmul(a, b);
    }
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "parallel::matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let workers = par.worker_count().min(m.max(1));
    let av = a.as_slice();
    let bv = b.as_slice();
    if workers <= 1 || m < 2 * MR {
        panel_rows(av, bv, out.as_mut_slice(), 0, m, k, n);
        return Ok(out);
    }
    // Split C into near-equal disjoint row panels, one per worker. Each
    // worker owns a contiguous `&mut` slice of the output, so no
    // synchronization is needed beyond the scope join.
    let base = m / workers;
    let extra = m % workers;
    thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut r0 = 0;
        for w in 0..workers {
            let rows = base + usize::from(w < extra);
            let (mine, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            scope.spawn(move || panel_rows(av, bv, mine, r0, rows, k, n));
            r0 += rows;
        }
    });
    Ok(out)
}

/// Matrix Hadamard Product `Y = X ⊙ K + B` under the given parallelism
/// setting; bit-identical to [`gemm::mhp`].
///
/// # Errors
///
/// Shape errors as in [`gemm::mhp`].
pub fn mhp(x: &Tensor, k: &Tensor, b: &Tensor, par: Parallelism) -> Result<Tensor> {
    if x.shape() != k.shape() || x.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: x.dims().to_vec(),
            rhs: k.dims().to_vec(),
            op: "parallel::mhp",
        });
    }
    let workers = par.worker_count().min(x.len().max(1));
    if workers <= 1 || x.len() < 4096 {
        return gemm::mhp(x, k, b);
    }
    let mut out = Tensor::zeros(x.dims());
    let chunk = x.len().div_ceil(workers);
    let xv = x.as_slice();
    let kv = k.as_slice();
    let bv = b.as_slice();
    thread::scope(|scope| {
        for (w, ochunk) in out.as_mut_slice().chunks_mut(chunk).enumerate() {
            let lo = w * chunk;
            let hi = lo + ochunk.len();
            let (xc, kc, bc) = (&xv[lo..hi], &kv[lo..hi], &bv[lo..hi]);
            scope.spawn(move || {
                for (((o, &xi), &ki), &bi) in ochunk.iter_mut().zip(xc).zip(kc).zip(bc) {
                    *o = xi * ki + bi;
                }
            });
        }
    });
    Ok(out)
}

/// Computes rows `r0..r0 + rows` of `C` into `c` (a slice holding exactly
/// those rows, starting at row `r0` of the full matrix).
///
/// BLIS-style packing, done independently by each worker (the duplicated
/// copies are `O(m·k + k·n)` against `O(rows · k · n)` of MACs):
///
/// * this worker's `A` rows are repacked block-major — `MR` rows
///   interleaved p-major — so the microkernel reads one contiguous
///   `MR`-float line per `k` step;
/// * `B` is consumed one [`NR`]-wide column panel at a time: the panel is
///   packed into a small contiguous buffer (the last panel zero-padded)
///   and immediately swept by every row block, staying cache-hot while
///   in use.
fn panel_rows(a: &[f32], b: &[f32], c: &mut [f32], r0: usize, rows: usize, k: usize, n: usize) {
    let full_rows = (rows / MR) * MR;
    let blocks = rows / MR;
    let mut apack = vec![0.0f32; blocks * k * MR];
    for blk in 0..blocks {
        let base = blk * k * MR;
        for p in 0..k {
            for r in 0..MR {
                apack[base + p * MR + r] = a[(r0 + blk * MR + r) * k + p];
            }
        }
    }
    let mut panel = vec![0.0f32; KC * NR];
    for t in 0..n.div_ceil(NR) {
        let j0 = t * NR;
        let width = NR.min(n - j0);
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            if width < NR || kc < KC {
                panel.fill(0.0);
            }
            for p in 0..kc {
                panel[p * NR..p * NR + width]
                    .copy_from_slice(&b[(k0 + p) * n + j0..(k0 + p) * n + j0 + width]);
            }
            for blk in 0..blocks {
                let base = blk * k * MR + k0 * MR;
                let ablock = &apack[base..base + kc * MR];
                microkernel(ablock, kc, &panel, c, blk * MR, j0, n, width);
            }
            k0 += kc;
        }
    }
    for ii in full_rows..rows {
        reference_row(a, b, c, r0 + ii, ii, k, n);
    }
}

/// The register-tiled inner kernel: an `MR × NR` block of `C` held in
/// accumulators across one `kc`-deep pass of the packed panels.
///
/// The block's running totals are *resumed from* `C` and checkpointed
/// back to it between k-blocks, so each output element experiences one
/// uninterrupted ascending-`k` chain of fused multiply-adds — the exact
/// reference op sequence — regardless of how `k` is blocked. Only the
/// first `width` columns are stored; the rest are the last panel's zero
/// padding.
#[allow(clippy::too_many_arguments)]
fn microkernel(
    ablock: &[f32],
    kc: usize,
    bpanel: &[f32],
    c: &mut [f32],
    ci0: usize,
    j0: usize,
    n: usize,
    width: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let row = (ci0 + r) * n + j0;
        accr[..width].copy_from_slice(&c[row..row + width]);
    }
    for p in 0..kc {
        let brow: &[f32; NR] = bpanel[p * NR..p * NR + NR].try_into().expect("panel line");
        let arow: &[f32; MR] = ablock[p * MR..p * MR + MR]
            .try_into()
            .expect("A block line");
        for r in 0..MR {
            let arp = arow[r];
            // Same skip as the reference kernel: an exact zero in A
            // contributes no operation at all.
            if arp == 0.0 {
                continue;
            }
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] = arp.mul_add(brow[j], accr[j]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let row = (ci0 + r) * n + j0;
        c[row..row + width].copy_from_slice(&accr[..width]);
    }
}

/// One full row of `C` via the reference axpy loop — used for the
/// leftover rows of a panel that do not fill an `MR`-row block.
fn reference_row(a: &[f32], b: &[f32], c: &mut [f32], ai: usize, ci: usize, k: usize, n: usize) {
    let arow = &a[ai * k..ai * k + k];
    for (p, &ap) in arow.iter().enumerate() {
        if ap == 0.0 {
            continue;
        }
        let brow = &b[p * n..(p + 1) * n];
        let crow = &mut c[ci * n..(ci + 1) * n];
        for (o, &bv) in crow.iter_mut().zip(brow) {
            *o = ap.mul_add(bv, *o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn assert_bit_identical(x: &Tensor, y: &Tensor) {
        assert_eq!(x.dims(), y.dims());
        for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn blocked_matches_reference_on_odd_shapes() {
        let mut rng = Pcg32::seed_from_u64(11);
        for (m, k, n) in [
            (1, 1, 1),
            (5, 7, 3),
            (13, 29, 17),
            (64, 48, 50),
            (97, 31, 113),
        ] {
            let a = rng.randn(&[m, k], 1.0);
            let b = rng.randn(&[k, n], 1.0);
            let reference = gemm::matmul(&a, &b).unwrap();
            for par in [
                Parallelism::Threads(1),
                Parallelism::Threads(2),
                Parallelism::Threads(4),
                Parallelism::Auto,
            ] {
                assert_bit_identical(&matmul(&a, &b, par).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn zero_skip_semantics_preserved() {
        // Zeros in A exercise the reference's skip branch; -0.0 and
        // negative values exercise signed-zero accumulation.
        let a = Tensor::from_vec(
            vec![
                0.0, 1.0, -0.0, 2.0, 0.0, 0.0, -1.5, 0.0, 3.0, 0.0, -0.0, 0.25,
            ],
            &[2, 6],
        )
        .unwrap();
        let b = Pcg32::seed_from_u64(5).randn(&[6, 49], 1.0);
        let reference = gemm::matmul(&a, &b).unwrap();
        for par in [Parallelism::Threads(2), Parallelism::Auto] {
            assert_bit_identical(&matmul(&a, &b, par).unwrap(), &reference);
        }
    }

    #[test]
    fn sequential_dispatches_to_reference() {
        let mut rng = Pcg32::seed_from_u64(3);
        let a = rng.randn(&[9, 4], 1.0);
        let b = rng.randn(&[4, 6], 1.0);
        assert_bit_identical(
            &matmul(&a, &b, Parallelism::Sequential).unwrap(),
            &gemm::matmul(&a, &b).unwrap(),
        );
    }

    #[test]
    fn mhp_matches_reference() {
        let mut rng = Pcg32::seed_from_u64(4);
        for dims in [vec![3, 5], vec![70, 80]] {
            let x = rng.randn(&dims, 1.0);
            let k = rng.randn(&dims, 1.0);
            let b = rng.randn(&dims, 1.0);
            let reference = gemm::mhp(&x, &k, &b).unwrap();
            for par in [
                Parallelism::Sequential,
                Parallelism::Threads(3),
                Parallelism::Auto,
            ] {
                assert_bit_identical(&mhp(&x, &k, &b, par).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn shape_errors_propagate() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b, Parallelism::Auto).is_err());
        assert!(mhp(&a, &b, &a, Parallelism::Auto).is_err());
    }

    #[test]
    fn worker_counts_resolve() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(Parallelism::Sequential.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(), 4.min(cores));
        assert_eq!(Parallelism::Auto.worker_count(), cores);
        assert_eq!(Parallelism::Threads(4).label(), "threads(4)");
        assert_eq!(Parallelism::Sequential.label(), "seq");
    }
}
