use crate::TensorError;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that owns the
/// index-arithmetic used throughout the crate.
///
/// # Example
///
/// ```
/// use onesa_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements (product of all dimensions).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` has the wrong
    /// rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.len(),
                bound: self.dims.len(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (i, (&ix, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            if ix >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: ix,
                    bound: dim,
                });
            }
            off += ix * strides[i];
        }
        Ok(off)
    }

    /// Returns the matrix dimensions `(rows, cols)` if this is rank-2.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for any other rank.
    pub fn as_matrix(&self) -> Result<(usize, usize), TensorError> {
        if self.dims.len() == 2 {
            Ok((self.dims[0], self.dims[1]))
        } else {
            Err(TensorError::NotAMatrix {
                rank: self.dims.len(),
            })
        }
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[3, 5]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 7);
        assert_eq!(s.offset(&[2, 4]).unwrap(), 14);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[3, 5]);
        assert!(s.offset(&[3, 0]).is_err());
        assert!(s.offset(&[0, 5]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn as_matrix() {
        assert_eq!(Shape::new(&[4, 7]).as_matrix().unwrap(), (4, 7));
        assert!(Shape::new(&[4]).as_matrix().is_err());
        assert!(Shape::new(&[1, 2, 3]).as_matrix().is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
