//! Convolution-as-GEMM lowering.
//!
//! Systolic arrays execute convolutions by first unrolling input patches
//! into a matrix (`im2col`), turning the convolution into one general
//! matrix multiply — exactly the transformation the paper assumes when it
//! says "linear computations can be succinctly expressed as general matrix
//! multiplications".

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height and width (square kernels).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the stride is zero or
    /// the kernel does not fit the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be nonzero"));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kernel || pw < self.kernel {
            return Err(TensorError::InvalidArgument(
                "kernel larger than padded input",
            ));
        }
        Ok((
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        ))
    }

    /// Rows of the im2col matrix (= patch volume `Cin·k·k`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unrolls a `[C, H, W]` input into a `[out_h·out_w, C·k·k]` patch matrix.
///
/// Multiplying the result by the `[C·k·k, out_channels]` reshaped kernel
/// yields the convolution output as a `[out_h·out_w, out_channels]` matrix.
///
/// # Errors
///
/// Returns a shape error if `input` is not `[C, H, W]` with
/// `C = geometry.in_channels`, or an invalid-argument error from
/// [`Conv2dGeometry::output_hw`].
pub fn im2col(input: &Tensor, geo: &Conv2dGeometry) -> Result<Tensor> {
    let dims = input.dims();
    if dims.len() != 3 || dims[0] != geo.in_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: dims.to_vec(),
            rhs: vec![geo.in_channels, 0, 0],
            op: "im2col",
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let (oh, ow) = geo.output_hw(h, w)?;
    let patch = geo.patch_len();
    let mut out = Tensor::zeros(&[oh * ow, patch]);
    let data = input.as_slice();
    let k = geo.kernel;
    let pad = geo.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let base_y = (oy * geo.stride) as isize - pad;
            let base_x = (ox * geo.stride) as isize - pad;
            for ch in 0..c {
                for ky in 0..k {
                    let iy = base_y + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = base_x + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let col = ch * k * k + ky * k + kx;
                        let v = data[ch * h * w + iy as usize * w + ix as usize];
                        out.as_mut_slice()[row * patch + col] = v;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Reassembles a `[out_h·out_w, out_channels]` GEMM result into a
/// `[out_channels, out_h, out_w]` feature map.
///
/// # Errors
///
/// Returns a shape error if `cols` does not match the given geometry.
pub fn col2im_output(cols: &Tensor, out_channels: usize, oh: usize, ow: usize) -> Result<Tensor> {
    let (rows, ch) = cols.shape().as_matrix()?;
    if rows != oh * ow || ch != out_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.dims().to_vec(),
            rhs: vec![oh * ow, out_channels],
            op: "col2im_output",
        });
    }
    let mut out = Tensor::zeros(&[out_channels, oh, ow]);
    for r in 0..rows {
        for c in 0..ch {
            out.as_mut_slice()[c * oh * ow + r] = cols.as_slice()[r * ch + c];
        }
    }
    Ok(out)
}

/// Direct (reference) convolution used to validate the im2col path.
///
/// `input` is `[C, H, W]`; `weight` is `[out_channels, C, k, k]` flattened
/// into `[out_channels, C·k·k]`.
///
/// # Errors
///
/// Shape errors mirror [`im2col`].
pub fn conv2d_direct(input: &Tensor, weight: &Tensor, geo: &Conv2dGeometry) -> Result<Tensor> {
    let dims = input.dims();
    if dims.len() != 3 {
        return Err(TensorError::NotAMatrix { rank: dims.len() });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let (oh, ow) = geo.output_hw(h, w)?;
    let k = geo.kernel;
    let pad = geo.padding as isize;
    let mut out = Tensor::zeros(&[geo.out_channels, oh, ow]);
    for oc in 0..geo.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * geo.stride) as isize - pad + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * geo.stride) as isize - pad + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let iv = input.as_slice()[ch * h * w + iy as usize * w + ix as usize];
                            let wv = weight.as_slice()[oc * c * k * k + ch * k * k + ky * k + kx];
                            acc += iv * wv;
                        }
                    }
                }
                out.as_mut_slice()[oc * oh * ow + oy * ow + ox] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    fn geo(cin: usize, cout: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            stride,
            padding: pad,
        }
    }

    #[test]
    fn output_geometry() {
        let g = geo(3, 8, 3, 1, 1);
        assert_eq!(g.output_hw(8, 8).unwrap(), (8, 8));
        let g2 = geo(3, 8, 3, 2, 1);
        assert_eq!(g2.output_hw(8, 8).unwrap(), (4, 4));
        assert!(geo(1, 1, 3, 0, 0).output_hw(8, 8).is_err());
        assert!(geo(1, 1, 9, 1, 0).output_hw(8, 8).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a channels-last reshuffle.
        let input = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 2, 2]).unwrap();
        let g = geo(2, 1, 1, 1, 0);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        assert_eq!(cols.at(&[0, 0]).unwrap(), 0.0);
        assert_eq!(cols.at(&[0, 1]).unwrap(), 4.0);
        assert_eq!(cols.at(&[3, 0]).unwrap(), 3.0);
        assert_eq!(cols.at(&[3, 1]).unwrap(), 7.0);
    }

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let g = geo(3, 5, 3, 1, 1);
        let h = 6;
        let w = 7;
        let input = Tensor::from_vec(
            (0..3 * h * w)
                .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.1)
                .collect(),
            &[3, h, w],
        )
        .unwrap();
        let weight = Tensor::from_vec(
            (0..5 * 3 * 9)
                .map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.05)
                .collect(),
            &[5, 3 * 9],
        )
        .unwrap();

        let direct = conv2d_direct(&input, &weight, &g).unwrap();

        let (oh, ow) = g.output_hw(h, w).unwrap();
        let cols = im2col(&input, &g).unwrap();
        let wt = weight.transpose().unwrap();
        let prod = gemm::matmul(&cols, &wt).unwrap();
        let folded = col2im_output(&prod, 5, oh, ow).unwrap();

        assert_eq!(direct.dims(), folded.dims());
        for (a, b) in direct.as_slice().iter().zip(folded.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn im2col_with_stride_and_padding() {
        let g = geo(1, 1, 3, 2, 1);
        let input = Tensor::from_vec((0..25).map(|i| i as f32).collect(), &[1, 5, 5]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        // (5 + 2 - 3)/2 + 1 = 3 outputs per axis.
        assert_eq!(cols.dims(), &[9, 9]);
        // First patch is the top-left corner: padded row and column are 0.
        let first = cols.row(0).unwrap();
        assert_eq!(first, &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn col2im_shape_check() {
        let cols = Tensor::zeros(&[4, 3]);
        assert!(col2im_output(&cols, 3, 2, 2).is_ok());
        assert!(col2im_output(&cols, 2, 2, 2).is_err());
        assert!(col2im_output(&cols, 3, 3, 2).is_err());
    }
}
