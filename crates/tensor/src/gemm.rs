//! Reference linear algebra kernels.
//!
//! These are the *functional* definitions the cycle-level simulator is
//! checked against: general matrix multiply (the systolic array's native
//! operation) and the Matrix Hadamard Product `Y = X ⊙ K + B` that ONE-SA
//! uses to evaluate capped piecewise-linear approximations.

use crate::{Result, Tensor, TensorError};

/// Computes `A · B` for matrices `A (M×K)` and `B (K×N)`.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] if either operand is not rank-2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions differ.
///
/// # Example
///
/// ```
/// use onesa_tensor::{Tensor, gemm};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = gemm::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), onesa_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

/// Computes `A · B` into a preallocated output, accumulating on top of the
/// existing contents (`C += A · B`), which mirrors how a tiled systolic
/// schedule accumulates partial products across K-tiles.
///
/// Each accumulation step is one **fused multiply-add**
/// ([`f32::mul_add`]) — the same single-rounding operation a hardware MAC
/// unit performs, and the contract the parallel backend
/// ([`crate::parallel`]) reproduces bit-for-bit.
///
/// # Errors
///
/// Shape errors as in [`matmul`]; additionally the output must be `M×N`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    let (om, on) = out.shape().as_matrix()?;
    if k != k2 || om != m || on != n {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_into",
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    // i-k-j loop order keeps the inner loop contiguous over B and C rows.
    for i in 0..m {
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            let orow = &mut ov[i * n..(i + 1) * n];
            for (o, &bpj) in orow.iter_mut().zip(brow.iter()) {
                *o = aip.mul_add(bpj, *o);
            }
        }
    }
    Ok(())
}

/// Matrix Hadamard Product with bias: `Y = X ⊙ K + B`.
///
/// This is the paper's step ③ — once Intermediate Parameter Fetching has
/// produced the slope matrix `K` and intercept matrix `B`, the nonlinear
/// function evaluation reduces to this elementwise form.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless all three operands share
/// one shape.
///
/// # Example
///
/// ```
/// use onesa_tensor::{Tensor, gemm};
///
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// let k = Tensor::from_vec(vec![3.0, 4.0], &[2])?;
/// let b = Tensor::from_vec(vec![0.5, -0.5], &[2])?;
/// let y = gemm::mhp(&x, &k, &b)?;
/// assert_eq!(y.as_slice(), &[3.5, 7.5]);
/// # Ok::<(), onesa_tensor::TensorError>(())
/// ```
pub fn mhp(x: &Tensor, k: &Tensor, b: &Tensor) -> Result<Tensor> {
    if x.shape() != k.shape() || x.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: x.dims().to_vec(),
            rhs: k.dims().to_vec(),
            op: "mhp",
        });
    }
    let data = x
        .as_slice()
        .iter()
        .zip(k.as_slice())
        .zip(b.as_slice())
        .map(|((&x, &k), &b)| x * k + b)
        .collect();
    Tensor::from_vec(data, x.dims())
}

/// Multiplies matrix rows by a per-row scalar: `Y[i,j] = X[i,j] * s[i]`.
///
/// Softmax lowering uses this for the final `exp(x) · (1/rowsum)` scale.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] / [`TensorError::ShapeMismatch`] on
/// malformed operands.
pub fn row_scale(x: &Tensor, s: &[f32]) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix()?;
    if s.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: x.dims().to_vec(),
            rhs: vec![s.len()],
            op: "row_scale",
        });
    }
    let mut out = x.clone();
    for (i, &scale) in s.iter().enumerate() {
        let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for v in row {
            *v *= scale;
        }
    }
    Ok(out)
}

/// Row-wise sums of a matrix (`X · 1`), the reduction GEMM used in the
/// softmax and layer-norm lowerings.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] for non-matrices.
pub fn row_sums(x: &Tensor) -> Result<Vec<f32>> {
    let (m, n) = x.shape().as_matrix()?;
    let mut sums = vec![0.0f32; m];
    for (i, sum) in sums.iter_mut().enumerate() {
        *sum = x.as_slice()[i * n..(i + 1) * n].iter().sum();
    }
    Ok(sums)
}

/// Row-wise maxima of a matrix, used for numerically-stable softmax.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] for non-matrices.
pub fn row_maxes(x: &Tensor) -> Result<Vec<f32>> {
    let (m, n) = x.shape().as_matrix()?;
    let mut maxes = vec![f32::NEG_INFINITY; m];
    for (i, max) in maxes.iter_mut().enumerate() {
        for &v in &x.as_slice()[i * n..(i + 1) * n] {
            if v > *max {
                *max = v;
            }
        }
    }
    Ok(maxes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap();
        let i4 = Tensor::eye(4);
        assert_eq!(matmul(&a, &i4).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut c = Tensor::ones(&[2, 2]);
        matmul_into(&a, &b, &mut c).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn mhp_matches_scalar_formula() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]).unwrap();
        let k = Tensor::from_vec(vec![2.0, 2.0, -1.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, -1.0], &[2, 2]).unwrap();
        let y = mhp(&x, &k, &b).unwrap();
        assert_eq!(y.as_slice(), &[2.0, -3.0, 0.5, -1.0]);
    }

    #[test]
    fn mhp_shape_mismatch() {
        let x = Tensor::zeros(&[2, 2]);
        let k = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(mhp(&x, &k, &b).is_err());
    }

    #[test]
    fn row_helpers() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -4.0, 5.0, -6.0], &[2, 3]).unwrap();
        assert_eq!(row_sums(&x).unwrap(), vec![6.0, -5.0]);
        assert_eq!(row_maxes(&x).unwrap(), vec![3.0, 5.0]);
        let scaled = row_scale(&x, &[2.0, 0.5]).unwrap();
        assert_eq!(scaled.as_slice(), &[2.0, 4.0, 6.0, -2.0, 2.5, -3.0]);
    }

    #[test]
    fn tiled_matmul_equals_direct() {
        // Tiling invariance: computing C by 2x2 output tiles with K-tile
        // accumulation must equal the direct product.
        let m = 5;
        let k = 7;
        let n = 6;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[m, k],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.53).cos()).collect(),
            &[k, n],
        )
        .unwrap();
        let direct = matmul(&a, &b).unwrap();

        let t = 2;
        let mut tiled = Tensor::zeros(&[m, n]);
        let mut r0 = 0;
        while r0 < m {
            let mut c0 = 0;
            while c0 < n {
                let mut acc = Tensor::zeros(&[t, t]);
                let mut k0 = 0;
                while k0 < k {
                    let at = a.tile_padded(r0, k0, t, t).unwrap();
                    let bt = b.tile_padded(k0, c0, t, t).unwrap();
                    matmul_into(&at, &bt, &mut acc).unwrap();
                    k0 += t;
                }
                tiled.tile_write(r0, c0, &acc).unwrap();
                c0 += t;
            }
            r0 += t;
        }
        for (x, y) in direct.as_slice().iter().zip(tiled.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }
}
