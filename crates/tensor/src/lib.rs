//! Dense tensor primitives for the ONE-SA reproduction.
//!
//! This crate provides the numeric substrate every other crate builds on:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with shape/stride
//!   machinery, elementwise math and reductions.
//! * [`gemm`] — reference general matrix multiplication plus the Hadamard
//!   ops (`X ⊙ K + B`) at the heart of the paper's MHP event.
//! * [`im2col`] — convolution-as-GEMM lowering used by the CNN substrate.
//! * [`quant`] — symmetric INT16 quantization matching the paper's
//!   evaluation precision, plus the INT8 rung below it.
//! * [`sparse`] — packed column-block sparse weights and a
//!   sparsity-aware GEMM that skips zero blocks entirely (bit-identical
//!   to the dense kernels on the same values).
//! * [`fixed`] — Q-format fixed-point scalar arithmetic used by the
//!   shift-based segment addressing of the L3 buffer.
//! * [`parallel`] — the cache-blocked, multi-threaded execution backend
//!   behind the serving layer (bit-identical to the reference kernels).
//! * [`rng`] — a small deterministic PRNG (PCG-32) so every experiment in
//!   the repository is reproducible without external crates.
//!
//! # Example
//!
//! ```
//! use onesa_tensor::{Tensor, gemm};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = gemm::matmul(&a, &b)?;
//! assert_eq!(c, a);
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod fixed;
pub mod gemm;
pub mod im2col;
pub mod parallel;
pub mod quant;
pub mod rng;
pub mod sparse;
pub mod stats;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
