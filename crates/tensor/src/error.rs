use std::fmt;

/// Error type for tensor operations.
///
/// All fallible public functions in this crate return
/// [`Result`](crate::Result) with this error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of data elements does not match the product of the
    /// requested shape dimensions.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The operation requires a matrix (rank-2 tensor).
    NotAMatrix {
        /// Actual rank of the offending tensor.
        rank: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending flat or axis index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
    /// A parameter was outside its legal domain (for example a zero
    /// convolution stride).
    InvalidArgument(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, expected } => {
                write!(
                    f,
                    "data length {len} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::NotAMatrix { rank } => {
                write!(f, "expected a rank-2 tensor, got rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for size {bound}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch {
                len: 1,
                expected: 2,
            },
            TensorError::ShapeMismatch {
                lhs: vec![1],
                rhs: vec![2],
                op: "add",
            },
            TensorError::NotAMatrix { rank: 3 },
            TensorError::IndexOutOfBounds { index: 9, bound: 3 },
            TensorError::InvalidArgument("stride must be nonzero"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
