//! Error metrics and small statistics helpers shared by the accuracy
//! experiments and the approximation-quality analyses.

use crate::Tensor;

/// Maximum absolute elementwise difference between two equally-sized
/// slices (`0` when either slice is empty).
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

/// Root-mean-square elementwise difference (`0` when empty).
pub fn rms_diff(a: &[f32], b: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let sq: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64) * ((x - y) as f64))
        .sum();
    ((sq / a.len() as f64) as f32).sqrt()
}

/// Mean absolute elementwise difference (`0` when empty).
pub fn mean_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum::<f32>() / a.len() as f32
}

/// Index of the maximum element (`None` for an empty slice; ties resolve
/// to the first maximum).
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, bx)) if bx >= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Classification accuracy of row-wise argmax predictions on a logits
/// matrix against integer labels.
///
/// Returns `0.0` for an empty label set.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let dims = logits.dims();
    if dims.len() != 2 || labels.is_empty() {
        return 0.0;
    }
    let (rows, cols) = (dims[0], dims[1]);
    let n = rows.min(labels.len());
    let mut correct = 0usize;
    for (r, &label) in labels.iter().take(n).enumerate() {
        let row = &logits.as_slice()[r * cols..(r + 1) * cols];
        if argmax(row) == Some(label) {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

/// Pearson correlation coefficient between two equal-length slices
/// (`0` for degenerate inputs), used for the STS-B-style regression task.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let ma = a[..n].iter().sum::<f32>() / n as f32;
    let mb = b[..n].iter().sum::<f32>() / n as f32;
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for i in 0..n {
        let da = (a[i] - ma) as f64;
        let db = (b[i] - mb) as f64;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())) as f32
}

/// Matthews correlation coefficient for binary predictions, the CoLA-style
/// metric (`0` for degenerate confusion matrices).
pub fn matthews(preds: &[usize], labels: &[usize]) -> f32 {
    let n = preds.len().min(labels.len());
    let (mut tp, mut tn, mut fp, mut fneg) = (0f64, 0f64, 0f64, 0f64);
    for i in 0..n {
        match (preds[i], labels[i]) {
            (1, 1) => tp += 1.0,
            (0, 0) => tn += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fneg += 1.0,
            _ => {}
        }
    }
    let denom = ((tp + fp) * (tp + fneg) * (tn + fp) * (tn + fneg)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        ((tp * tn - fp * fneg) / denom) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffs() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 1.0];
        assert_eq!(max_abs_diff(&a, &b), 2.0);
        assert!((mean_abs_diff(&a, &b) - (0.5 + 0.0 + 2.0) / 3.0).abs() < 1e-6);
        let rms = rms_diff(&a, &b);
        assert!((rms - ((0.25 + 4.0) / 3.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
        assert_eq!(rms_diff(&[], &[]), 0.0);
    }

    #[test]
    fn argmax_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[-5.0]), Some(0));
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn matthews_known_cases() {
        assert!((matthews(&[1, 0, 1, 0], &[1, 0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((matthews(&[0, 1, 0, 1], &[1, 0, 1, 0]) + 1.0).abs() < 1e-6);
        assert_eq!(matthews(&[1, 1, 1, 1], &[1, 0, 1, 0]), 0.0);
    }
}
