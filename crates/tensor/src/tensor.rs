use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the workhorse value type of the reproduction: network
/// activations, weights, CPWL parameter matrices (`K`, `B`) and simulator
/// payloads are all `Tensor`s.
///
/// # Example
///
/// ```
/// use onesa_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2])?, 6.0);
/// let doubled = t.map(|x| x * 2.0);
/// assert_eq!(doubled.at(&[0, 0])?, 2.0);
/// # Ok::<(), onesa_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::filled(dims, 1.0)
    }

    /// Creates a tensor where every element is `value`.
    pub fn filled(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on bad indices.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on bad indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
                op: "zip",
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Self> {
        self.zip(rhs, |a, b| a - b)
    }

    /// Elementwise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Self> {
        self.zip(rhs, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Transposes a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Self> {
        let (rows, cols) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros(&[cols, rows]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(out)
    }

    /// Borrows row `r` of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for a bad row.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        let (rows, cols) = self.shape.as_matrix()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: rows,
            });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Mutably borrows row `r` of a matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::row`].
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        let (rows, cols) = self.shape.as_matrix()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: rows,
            });
        }
        Ok(&mut self.data[r * cols..(r + 1) * cols])
    }

    /// Extracts a rectangular sub-matrix `[r0..r0+h, c0..c0+w]`, zero padded
    /// where the window extends past the matrix edge.
    ///
    /// Tiling a matrix onto a fixed-size systolic array uses this to build
    /// edge tiles.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn tile_padded(&self, r0: usize, c0: usize, h: usize, w: usize) -> Result<Self> {
        let (rows, cols) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros(&[h, w]);
        for r in 0..h {
            if r0 + r >= rows {
                break;
            }
            for c in 0..w {
                if c0 + c >= cols {
                    break;
                }
                out.data[r * w + c] = self.data[(r0 + r) * cols + (c0 + c)];
            }
        }
        Ok(out)
    }

    /// Writes a tile back into `self` at `[r0.., c0..]`, ignoring the parts
    /// of the tile that fall outside the matrix (the inverse of
    /// [`Tensor::tile_padded`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if either tensor is not rank-2.
    pub fn tile_write(&mut self, r0: usize, c0: usize, tile: &Tensor) -> Result<()> {
        let (rows, cols) = self.shape.as_matrix()?;
        let (h, w) = tile.shape.as_matrix()?;
        for r in 0..h {
            if r0 + r >= rows {
                break;
            }
            for c in 0..w {
                if c0 + c >= cols {
                    break;
                }
                self.data[(r0 + r) * cols + (c0 + c)] = tile.data[r * w + c];
            }
        }
        Ok(())
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor{} {:?}",
            self.shape,
            &self.data[..self.data.len().min(8)]
        )?;
        if self.data.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.at(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.map(|x| x + 1.0).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10.0, 40.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0]);
    }

    #[test]
    fn zip_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]).unwrap(), 5.0);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![-1.0, 4.0, 2.0, -5.0], &[4]).unwrap();
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -5.0);
    }

    #[test]
    fn tile_padded_pads_with_zeros() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]).unwrap();
        let t = a.tile_padded(2, 2, 2, 2).unwrap();
        assert_eq!(t.as_slice(), &[8.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn tile_write_round_trip() {
        let a = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[4, 4]).unwrap();
        let mut b = Tensor::zeros(&[4, 4]);
        for r0 in [0, 2] {
            for c0 in [0, 2] {
                let tile = a.tile_padded(r0, c0, 2, 2).unwrap();
                b.tile_write(r0, c0, &tile).unwrap();
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn rows() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.dims(), &[3, 2]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }
}
