//! Symmetric INT16 tensor quantization.
//!
//! The paper evaluates all networks and the array itself at INT16
//! precision ("both the neural networks and the systolic arrays are
//! quantized to INT16 precision"). This module provides the
//! per-tensor symmetric scheme used by the reproduction's quantized
//! inference path, plus an integer GEMM with `i64` accumulation mirroring
//! the multi-layer accumulator of the PE.

use crate::{Result, Tensor, TensorError};

/// An INT16-quantized tensor with one symmetric scale factor.
///
/// Real value = `scale * q` for each stored `i16` element `q`.
///
/// # Example
///
/// ```
/// use onesa_tensor::{Tensor, quant::QuantTensor};
///
/// let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3])?;
/// let q = QuantTensor::quantize(&t);
/// let back = q.dequantize();
/// for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
///     assert!((a - b).abs() < 1e-3);
/// }
/// # Ok::<(), onesa_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    dims: Vec<usize>,
    data: Vec<i16>,
    scale: f32,
}

impl QuantTensor {
    /// Quantizes a float tensor symmetrically so its absolute maximum maps
    /// to `i16::MAX`. An all-zero tensor gets scale `1.0`.
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / i16::MAX as f32
        };
        Self::quantize_with_scale(t, scale)
    }

    /// Quantizes with an explicit scale (values saturate at the i16 range).
    pub fn quantize_with_scale(t: &Tensor, scale: f32) -> Self {
        let data = t
            .as_slice()
            .iter()
            .map(|&x| {
                let q = (x / scale).round();
                if q >= i16::MAX as f32 {
                    i16::MAX
                } else if q <= i16::MIN as f32 {
                    i16::MIN
                } else {
                    q as i16
                }
            })
            .collect();
        QuantTensor {
            dims: t.dims().to_vec(),
            data,
            scale,
        }
    }

    /// Reconstructs the float tensor `scale * q`.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.dims).expect("shape preserved by construction")
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Borrow the raw `i16` values.
    pub fn as_slice(&self) -> &[i16] {
        &self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Integer GEMM `A · B` with `i64` accumulation, dequantized on the way
/// out — functionally what the INT16 array computes for one tile.
///
/// # Errors
///
/// Returns shape errors as in [`crate::gemm::matmul`].
pub fn quant_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    if a.dims.len() != 2 || b.dims.len() != 2 {
        return Err(TensorError::NotAMatrix {
            rank: a.dims.len().max(b.dims.len()),
        });
    }
    let (m, k) = (a.dims[0], a.dims[1]);
    let (k2, n) = (b.dims[0], b.dims[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims.clone(),
            rhs: b.dims.clone(),
            op: "quant_matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let scale = a.scale * b.scale;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k {
                acc += a.data[i * k + p] as i64 * b.data[p * n + j] as i64;
            }
            out.as_mut_slice()[i * n + j] = acc as f32 * scale;
        }
    }
    Ok(out)
}

/// Quantization error statistics for a round trip through INT16.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantError {
    /// Maximum absolute error.
    pub max_abs: f32,
    /// Root-mean-square error.
    pub rms: f32,
}

/// Measures the round-trip error of symmetric INT16 quantization on `t`.
pub fn round_trip_error(t: &Tensor) -> QuantError {
    let q = QuantTensor::quantize(t);
    let back = q.dequantize();
    let mut max_abs = 0.0f32;
    let mut sq = 0.0f64;
    for (&a, &b) in t.as_slice().iter().zip(back.as_slice()) {
        let e = (a - b).abs();
        max_abs = max_abs.max(e);
        sq += (e as f64) * (e as f64);
    }
    let n = t.len().max(1);
    QuantError {
        max_abs,
        rms: ((sq / n as f64) as f32).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    #[test]
    fn quantize_zero_tensor() {
        let t = Tensor::zeros(&[4]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let t = Tensor::from_vec(
            (0..100).map(|i| ((i as f32) * 0.731).sin() * 3.0).collect(),
            &[10, 10],
        )
        .unwrap();
        let q = QuantTensor::quantize(&t);
        let err = round_trip_error(&t);
        assert!(err.max_abs <= q.scale() * 0.5 + 1e-7, "{err:?}");
    }

    #[test]
    fn saturation_with_small_scale() {
        let t = Tensor::from_vec(vec![100.0, -100.0], &[2]).unwrap();
        let q = QuantTensor::quantize_with_scale(&t, 1e-3);
        assert_eq!(q.as_slice(), &[i16::MAX, i16::MIN]);
    }

    #[test]
    fn quant_matmul_close_to_float() {
        let a =
            Tensor::from_vec((0..12).map(|i| (i as f32 * 0.21).cos()).collect(), &[3, 4]).unwrap();
        let b =
            Tensor::from_vec((0..20).map(|i| (i as f32 * 0.37).sin()).collect(), &[4, 5]).unwrap();
        let exact = gemm::matmul(&a, &b).unwrap();
        let qa = QuantTensor::quantize(&a);
        let qb = QuantTensor::quantize(&b);
        let approx = quant_matmul(&qa, &qb).unwrap();
        for (x, y) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn quant_matmul_shape_errors() {
        let a = QuantTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QuantTensor::quantize(&Tensor::zeros(&[2, 3]));
        assert!(quant_matmul(&a, &b).is_err());
        let v = QuantTensor::quantize(&Tensor::zeros(&[3]));
        assert!(quant_matmul(&a, &v).is_err());
    }
}
