//! Symmetric INT16 and INT8 tensor quantization.
//!
//! The paper evaluates all networks and the array itself at INT16
//! precision ("both the neural networks and the systolic arrays are
//! quantized to INT16 precision"). This module provides the
//! per-tensor symmetric scheme used by the reproduction's quantized
//! inference path, plus an integer GEMM with `i64` accumulation mirroring
//! the multi-layer accumulator of the PE. [`QuantTensor8`] is the INT8
//! rung one step below the paper's boundary precision — the same
//! symmetric scheme at an 8-bit range, for activation round trips where
//! a model tolerates the coarser step (the mobile-CNN operating point of
//! the structured-sparse low-precision literature).

use crate::{Result, Tensor, TensorError};

/// An INT16-quantized tensor with one symmetric scale factor.
///
/// Real value = `scale * q` for each stored `i16` element `q`.
///
/// # Example
///
/// ```
/// use onesa_tensor::{Tensor, quant::QuantTensor};
///
/// let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3])?;
/// let q = QuantTensor::quantize(&t);
/// let back = q.dequantize();
/// for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
///     assert!((a - b).abs() < 1e-3);
/// }
/// # Ok::<(), onesa_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    dims: Vec<usize>,
    data: Vec<i16>,
    scale: f32,
}

impl QuantTensor {
    /// Quantizes a float tensor symmetrically so its absolute maximum maps
    /// to `i16::MAX`. An all-zero tensor gets scale `1.0`.
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / i16::MAX as f32
        };
        Self::quantize_with_scale(t, scale)
    }

    /// Quantizes with an explicit scale (values saturate at the i16 range).
    pub fn quantize_with_scale(t: &Tensor, scale: f32) -> Self {
        let data = t
            .as_slice()
            .iter()
            .map(|&x| {
                let q = (x / scale).round();
                if q >= i16::MAX as f32 {
                    i16::MAX
                } else if q <= i16::MIN as f32 {
                    i16::MIN
                } else {
                    q as i16
                }
            })
            .collect();
        QuantTensor {
            dims: t.dims().to_vec(),
            data,
            scale,
        }
    }

    /// Reconstructs the float tensor `scale * q`.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.dims).expect("shape preserved by construction")
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Borrow the raw `i16` values.
    pub fn as_slice(&self) -> &[i16] {
        &self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Integer GEMM `A · B` with `i64` accumulation, dequantized on the way
/// out — functionally what the INT16 array computes for one tile.
///
/// # Errors
///
/// Returns shape errors as in [`crate::gemm::matmul`].
pub fn quant_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    if a.dims.len() != 2 || b.dims.len() != 2 {
        return Err(TensorError::NotAMatrix {
            rank: a.dims.len().max(b.dims.len()),
        });
    }
    let (m, k) = (a.dims[0], a.dims[1]);
    let (k2, n) = (b.dims[0], b.dims[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims.clone(),
            rhs: b.dims.clone(),
            op: "quant_matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let scale = a.scale * b.scale;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k {
                acc += a.data[i * k + p] as i64 * b.data[p * n + j] as i64;
            }
            out.as_mut_slice()[i * n + j] = acc as f32 * scale;
        }
    }
    Ok(out)
}

/// An INT8-quantized tensor with one symmetric scale factor — the
/// precision rung below [`QuantTensor`]. Real value = `scale * q` for
/// each stored `i8` element `q`.
///
/// The scheme is deterministic: quantization is a pure function of the
/// input bits (scale from the absolute maximum, round-to-nearest with
/// saturation), so two round trips of the same tensor are bit-identical.
///
/// # Example
///
/// ```
/// use onesa_tensor::{Tensor, quant::QuantTensor8};
///
/// let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3])?;
/// let q = QuantTensor8::quantize(&t);
/// let back = q.dequantize();
/// for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
///     assert!((a - b).abs() < 2.0 / 127.0);
/// }
/// # Ok::<(), onesa_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor8 {
    dims: Vec<usize>,
    data: Vec<i8>,
    scale: f32,
}

impl QuantTensor8 {
    /// Quantizes a float tensor symmetrically so its absolute maximum maps
    /// to `i8::MAX`. An all-zero tensor gets scale `1.0`.
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / i8::MAX as f32
        };
        Self::quantize_with_scale(t, scale)
    }

    /// Quantizes with an explicit scale (values saturate at the i8 range).
    pub fn quantize_with_scale(t: &Tensor, scale: f32) -> Self {
        let data = t
            .as_slice()
            .iter()
            .map(|&x| {
                let q = (x / scale).round();
                if q >= i8::MAX as f32 {
                    i8::MAX
                } else if q <= i8::MIN as f32 {
                    i8::MIN
                } else {
                    q as i8
                }
            })
            .collect();
        QuantTensor8 {
            dims: t.dims().to_vec(),
            data,
            scale,
        }
    }

    /// Reconstructs the float tensor `scale * q`.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.dims).expect("shape preserved by construction")
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Borrow the raw `i8` values.
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Integer GEMM `A · B` over INT8 operands with `i64` accumulation,
/// dequantized on the way out — the INT8 analogue of [`quant_matmul`].
///
/// # Errors
///
/// Returns shape errors as in [`crate::gemm::matmul`].
pub fn quant_matmul8(a: &QuantTensor8, b: &QuantTensor8) -> Result<Tensor> {
    if a.dims.len() != 2 || b.dims.len() != 2 {
        return Err(TensorError::NotAMatrix {
            rank: a.dims.len().max(b.dims.len()),
        });
    }
    let (m, k) = (a.dims[0], a.dims[1]);
    let (k2, n) = (b.dims[0], b.dims[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims.clone(),
            rhs: b.dims.clone(),
            op: "quant_matmul8",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let scale = a.scale * b.scale;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k {
                acc += a.data[i * k + p] as i64 * b.data[p * n + j] as i64;
            }
            out.as_mut_slice()[i * n + j] = acc as f32 * scale;
        }
    }
    Ok(out)
}

/// Quantization error statistics for a round trip through INT16.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantError {
    /// Maximum absolute error.
    pub max_abs: f32,
    /// Root-mean-square error.
    pub rms: f32,
}

/// Measures the round-trip error of symmetric INT16 quantization on `t`.
pub fn round_trip_error(t: &Tensor) -> QuantError {
    error_between(t, &QuantTensor::quantize(t).dequantize())
}

/// Measures the round-trip error of symmetric INT8 quantization on `t`.
pub fn round_trip_error8(t: &Tensor) -> QuantError {
    error_between(t, &QuantTensor8::quantize(t).dequantize())
}

fn error_between(t: &Tensor, back: &Tensor) -> QuantError {
    let mut max_abs = 0.0f32;
    let mut sq = 0.0f64;
    for (&a, &b) in t.as_slice().iter().zip(back.as_slice()) {
        let e = (a - b).abs();
        max_abs = max_abs.max(e);
        sq += (e as f64) * (e as f64);
    }
    let n = t.len().max(1);
    QuantError {
        max_abs,
        rms: ((sq / n as f64) as f32).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    #[test]
    fn quantize_zero_tensor() {
        let t = Tensor::zeros(&[4]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let t = Tensor::from_vec(
            (0..100).map(|i| ((i as f32) * 0.731).sin() * 3.0).collect(),
            &[10, 10],
        )
        .unwrap();
        let q = QuantTensor::quantize(&t);
        let err = round_trip_error(&t);
        assert!(err.max_abs <= q.scale() * 0.5 + 1e-7, "{err:?}");
    }

    #[test]
    fn saturation_with_small_scale() {
        let t = Tensor::from_vec(vec![100.0, -100.0], &[2]).unwrap();
        let q = QuantTensor::quantize_with_scale(&t, 1e-3);
        assert_eq!(q.as_slice(), &[i16::MAX, i16::MIN]);
    }

    #[test]
    fn quant_matmul_close_to_float() {
        let a =
            Tensor::from_vec((0..12).map(|i| (i as f32 * 0.21).cos()).collect(), &[3, 4]).unwrap();
        let b =
            Tensor::from_vec((0..20).map(|i| (i as f32 * 0.37).sin()).collect(), &[4, 5]).unwrap();
        let exact = gemm::matmul(&a, &b).unwrap();
        let qa = QuantTensor::quantize(&a);
        let qb = QuantTensor::quantize(&b);
        let approx = quant_matmul(&qa, &qb).unwrap();
        for (x, y) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn quant_matmul_shape_errors() {
        let a = QuantTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QuantTensor::quantize(&Tensor::zeros(&[2, 3]));
        assert!(quant_matmul(&a, &b).is_err());
        let v = QuantTensor::quantize(&Tensor::zeros(&[3]));
        assert!(quant_matmul(&a, &v).is_err());
    }

    #[test]
    fn int8_rung_mirrors_int16_semantics() {
        let t = Tensor::from_vec(
            (0..64).map(|i| ((i as f32) * 0.611).sin() * 2.5).collect(),
            &[8, 8],
        )
        .unwrap();
        let q = QuantTensor8::quantize(&t);
        assert_eq!(q.dims(), t.dims());
        assert_eq!(q.len(), 64);
        assert!(!q.is_empty());
        let err = round_trip_error8(&t);
        assert!(err.max_abs <= q.scale() * 0.5 + 1e-7, "{err:?}");
        // INT8 is a strictly coarser rung: its worst-case step is the
        // INT16 step scaled by the range ratio.
        let err16 = round_trip_error(&t);
        assert!(err16.max_abs <= err.max_abs + 1e-7);
        // Zero tensor and saturation behave as the INT16 scheme does.
        assert_eq!(QuantTensor8::quantize(&Tensor::zeros(&[4])).scale(), 1.0);
        let big = Tensor::from_vec(vec![100.0, -100.0], &[2]).unwrap();
        let qs = QuantTensor8::quantize_with_scale(&big, 1e-3);
        assert_eq!(qs.as_slice(), &[i8::MAX, i8::MIN]);
    }

    #[test]
    fn quant_matmul8_close_to_float() {
        let a =
            Tensor::from_vec((0..12).map(|i| (i as f32 * 0.21).cos()).collect(), &[3, 4]).unwrap();
        let b =
            Tensor::from_vec((0..20).map(|i| (i as f32 * 0.37).sin()).collect(), &[4, 5]).unwrap();
        let exact = gemm::matmul(&a, &b).unwrap();
        let qa = QuantTensor8::quantize(&a);
        let qb = QuantTensor8::quantize(&b);
        let approx = quant_matmul8(&qa, &qb).unwrap();
        for (x, y) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((x - y).abs() < 0.25, "{x} vs {y}");
        }
        let bad = QuantTensor8::quantize(&Tensor::zeros(&[2, 3]));
        assert!(quant_matmul8(&qa, &bad).is_err());
    }

    use crate::rng::Pcg32;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The INT8 rung is deterministic: the round trip is a pure
        /// function of the input bits, so repeating it is bit-identical,
        /// and re-quantizing an already round-tripped tensor is a fixed
        /// point of the scheme up to one further rounding step.
        #[test]
        fn prop_int8_round_trip_deterministic(seed in 0u64..10_000, m in 1usize..12, n in 1usize..12) {
            let t = Pcg32::seed_from_u64(seed).randn(&[m, n], 1.5);
            let q1 = QuantTensor8::quantize(&t);
            let q2 = QuantTensor8::quantize(&t);
            prop_assert_eq!(q1.scale().to_bits(), q2.scale().to_bits());
            prop_assert_eq!(q1.as_slice(), q2.as_slice());
            let b1 = q1.dequantize();
            let b2 = q2.dequantize();
            for (x, y) in b1.as_slice().iter().zip(b2.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            // Error bound: half a step at the tensor's scale.
            let err = round_trip_error8(&t);
            prop_assert!(err.max_abs <= q1.scale() * 0.5 + 1e-6);
        }
    }
}
