//! Packed column-block sparse weights and the sparsity-aware GEMM.
//!
//! Structured pruning zeroes whole **column blocks** of a weight matrix
//! (groups of `block_cols` adjacent output columns). [`SparseTensor`]
//! stores such a matrix as a block bitmap plus a packed payload: the
//! dense matrix with its zero column-blocks deleted. The payload is
//! exactly the sub-matrix the packed dense kernel would have swept had
//! the zero panels never existed, so [`matmul`] drives the same
//! 4×48 register-tiled microkernel as [`crate::parallel`] over the
//! payload and scatters each output column back to its true position —
//! zero blocks are never packed, never swept, never touched.
//!
//! # Bit-identical by construction
//!
//! A column of `C` depends only on the matching column of `B`. For a
//! column inside a zero block, every term of the reference accumulation
//! is `a·(+0.0)`: starting from the `+0.0` the output is initialized
//! with, each fused multiply-add returns the accumulator unchanged (an
//! accumulator seeded from `+0.0` over finite terms can never become
//! `-0.0` — exact cancellation rounds to `+0.0`), so the reference
//! produces exactly the `+0.0` the sparse kernel leaves in place. A
//! block counts as zero only when every element is bit-pattern `+0.0`
//! (a `-0.0` keeps its block in the payload), which also makes
//! [`SparseTensor::to_dense`] a lossless bit-exact round trip. Surviving
//! columns run the identical packed-microkernel op sequence as the dense
//! backend, so for finite inputs the whole product is bit-identical to
//! dense-times-dense under every [`Parallelism`] setting — the same
//! finite-input caveat as the dense kernel's own `A == 0.0` skip.
//!
//! # Example
//!
//! ```
//! use onesa_tensor::{gemm, sparse::SparseTensor, parallel::Parallelism, rng::Pcg32};
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let a = rng.randn(&[8, 32], 1.0);
//! let mut b = rng.randn(&[32, 64], 1.0);
//! // Zero columns 16..48 (two 16-wide blocks).
//! for row in 0..32 {
//!     for col in 16..48 {
//!         b.as_mut_slice()[row * 64 + col] = 0.0;
//!     }
//! }
//! let sb = SparseTensor::from_dense(&b, 16)?;
//! assert_eq!(sb.nnz_blocks(), 2);
//! assert_eq!(sb.to_dense(), b); // lossless
//! let fast = onesa_tensor::sparse::matmul(&a, &sb, Parallelism::Auto)?;
//! assert_eq!(fast, gemm::matmul(&a, &b)?); // bit-identical
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::parallel::Parallelism;
use crate::{Result, Tensor, TensorError};
use std::thread;

/// Microkernel tile height — mirrors `parallel::MR`.
const MR: usize = 4;
/// Microkernel tile width — mirrors `parallel::NR`.
const NR: usize = 48;
/// K-blocking depth — mirrors `parallel::KC`.
const KC: usize = 128;

/// A `rows × cols` matrix whose zero column-blocks are stored as a
/// bitmap instead of data. See the [module docs](self) for the layout
/// and the bit-identicality contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    rows: usize,
    cols: usize,
    block_cols: usize,
    /// `bitmap[b]` is `true` iff column block `b` holds any non-`+0.0`
    /// bit pattern. Length [`SparseTensor::total_blocks`].
    bitmap: Vec<bool>,
    /// The dense matrix with zero column-blocks deleted: `rows ×
    /// nnz_cols`, row-major — byte-for-byte what the packed kernel
    /// sweeps.
    payload: Vec<f32>,
    /// Payload column → original column (length `nnz_cols`).
    col_map: Vec<usize>,
}

/// Column-block occupancy of a dense matrix without packing it:
/// `(nnz_blocks, total_blocks, nnz_cols)` at the given block width.
/// This is what `onesa-plan` validates a program's sparsity attribute
/// against.
///
/// # Errors
///
/// [`TensorError::NotAMatrix`] for non-2-D input,
/// [`TensorError::InvalidArgument`] for a zero block width.
pub fn column_block_stats(t: &Tensor, block_cols: usize) -> Result<(usize, usize, usize)> {
    let (rows, cols) = t.shape().as_matrix()?;
    if block_cols == 0 {
        return Err(TensorError::InvalidArgument(
            "sparse block width must be positive",
        ));
    }
    let total = cols.div_ceil(block_cols);
    let data = t.as_slice();
    let mut nnz_blocks = 0;
    let mut nnz_cols = 0;
    for b in 0..total {
        let j0 = b * block_cols;
        let width = block_cols.min(cols - j0);
        let live = (0..rows).any(|i| {
            data[i * cols + j0..i * cols + j0 + width]
                .iter()
                .any(|v| v.to_bits() != 0)
        });
        if live {
            nnz_blocks += 1;
            nnz_cols += width;
        }
    }
    Ok((nnz_blocks, total, nnz_cols))
}

impl SparseTensor {
    /// Packs a dense matrix at the given column-block width. Blocks in
    /// which every element is bit-pattern `+0.0` are recorded only in
    /// the bitmap; all other blocks are copied bit-exactly into the
    /// payload.
    ///
    /// # Errors
    ///
    /// As for [`column_block_stats`].
    pub fn from_dense(t: &Tensor, block_cols: usize) -> Result<Self> {
        let (rows, cols) = t.shape().as_matrix()?;
        if block_cols == 0 {
            return Err(TensorError::InvalidArgument(
                "sparse block width must be positive",
            ));
        }
        let total = cols.div_ceil(block_cols);
        let data = t.as_slice();
        let mut bitmap = vec![false; total];
        let mut col_map = Vec::new();
        for (b, live_flag) in bitmap.iter_mut().enumerate() {
            let j0 = b * block_cols;
            let width = block_cols.min(cols - j0);
            let live = (0..rows).any(|i| {
                data[i * cols + j0..i * cols + j0 + width]
                    .iter()
                    .any(|v| v.to_bits() != 0)
            });
            if live {
                *live_flag = true;
                col_map.extend(j0..j0 + width);
            }
        }
        let nnz_cols = col_map.len();
        let mut payload = vec![0.0f32; rows * nnz_cols];
        for i in 0..rows {
            let src = &data[i * cols..(i + 1) * cols];
            let dst = &mut payload[i * nnz_cols..(i + 1) * nnz_cols];
            for (d, &j) in dst.iter_mut().zip(&col_map) {
                *d = src[j];
            }
        }
        Ok(SparseTensor {
            rows,
            cols,
            block_cols,
            bitmap,
            payload,
            col_map,
        })
    }

    /// Reconstructs the dense matrix, bit-exactly.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        let data = out.as_mut_slice();
        let nnz = self.col_map.len();
        for i in 0..self.rows {
            let src = &self.payload[i * nnz..(i + 1) * nnz];
            for (&v, &j) in src.iter().zip(&self.col_map) {
                data[i * self.cols + j] = v;
            }
        }
        out
    }

    /// Row count (the GEMM's inner dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the dense matrix this represents.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The column-block width the matrix was packed at.
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Number of column blocks holding data.
    pub fn nnz_blocks(&self) -> usize {
        self.bitmap.iter().filter(|&&b| b).count()
    }

    /// Total number of column blocks (`ceil(cols / block_cols)`).
    pub fn total_blocks(&self) -> usize {
        self.bitmap.len()
    }

    /// Number of surviving columns in the payload.
    pub fn nnz_cols(&self) -> usize {
        self.col_map.len()
    }

    /// Fraction of column blocks holding data (`1.0` for an empty
    /// block grid).
    pub fn density(&self) -> f64 {
        if self.bitmap.is_empty() {
            1.0
        } else {
            self.nnz_blocks() as f64 / self.total_blocks() as f64
        }
    }
}

/// Computes `A · B` for a column-block sparse `B` under the given
/// parallelism setting — bit-identical to the dense product of
/// `A · B.to_dense()` for every setting (see the [module docs](self)).
///
/// Zero blocks are skipped entirely: the kernel packs and sweeps only
/// the payload, so the MAC count scales with
/// [`SparseTensor::nnz_cols`], not with the dense width.
///
/// # Errors
///
/// Shape errors as in [`crate::gemm::matmul`].
pub fn matmul(a: &Tensor, b: &SparseTensor, par: Parallelism) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    if k != b.rows {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: vec![b.rows, b.cols],
            op: "sparse::matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, b.cols]);
    let nnz = b.col_map.len();
    if nnz == 0 {
        // Every block is zero: the dense product is exactly the +0.0
        // the output is initialized with.
        return Ok(out);
    }
    let av = a.as_slice();
    let workers = par.worker_count().min(m.max(1));
    if matches!(par, Parallelism::Sequential) || workers <= 1 || m < 2 * MR {
        panel_rows_scattered(av, b, out.as_mut_slice(), 0, m, k);
        return Ok(out);
    }
    // Disjoint near-equal row panels, one per worker, exactly as the
    // dense backend splits C.
    let n = b.cols;
    let base = m / workers;
    let extra = m % workers;
    thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut r0 = 0;
        for w in 0..workers {
            let rows = base + usize::from(w < extra);
            let (mine, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            scope.spawn(move || panel_rows_scattered(av, b, mine, r0, rows, k));
            r0 += rows;
        }
    });
    Ok(out)
}

/// The sparsity-aware variant of `parallel::panel_rows`: identical A
/// packing and k-blocking, but the B panels are read from the packed
/// payload (zero blocks were deleted at pack time, so the panel sweep
/// skips them by construction) and the `MR × NR` accumulator tile is
/// resumed from / checkpointed to `C` through the column map. Each
/// output element still experiences one uninterrupted ascending-`k`
/// chain of fused multiply-adds — the reference op sequence.
fn panel_rows_scattered(
    a: &[f32],
    b: &SparseTensor,
    c: &mut [f32],
    r0: usize,
    rows: usize,
    k: usize,
) {
    let n = b.cols;
    let nnz = b.col_map.len();
    let full_rows = (rows / MR) * MR;
    let blocks = rows / MR;
    let mut apack = vec![0.0f32; blocks * k * MR];
    for blk in 0..blocks {
        let base = blk * k * MR;
        for p in 0..k {
            for r in 0..MR {
                apack[base + p * MR + r] = a[(r0 + blk * MR + r) * k + p];
            }
        }
    }
    let mut panel = vec![0.0f32; KC * NR];
    for t in 0..nnz.div_ceil(NR) {
        let j0 = t * NR;
        let width = NR.min(nnz - j0);
        let cmap = &b.col_map[j0..j0 + width];
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            if width < NR || kc < KC {
                panel.fill(0.0);
            }
            for p in 0..kc {
                panel[p * NR..p * NR + width]
                    .copy_from_slice(&b.payload[(k0 + p) * nnz + j0..(k0 + p) * nnz + j0 + width]);
            }
            for blk in 0..blocks {
                let base = blk * k * MR + k0 * MR;
                let ablock = &apack[base..base + kc * MR];
                microkernel_scattered(ablock, kc, &panel, c, blk * MR, cmap, n);
            }
            k0 += kc;
        }
    }
    for ii in full_rows..rows {
        reference_row_scattered(a, b, c, r0 + ii, ii, k);
    }
}

/// The `MR × NR` register-tiled inner kernel over one packed payload
/// panel. Identical accumulation to `parallel::microkernel`; only the
/// resume/checkpoint addressing differs — each tile column maps to its
/// original output column through `cmap`.
fn microkernel_scattered(
    ablock: &[f32],
    kc: usize,
    bpanel: &[f32],
    c: &mut [f32],
    ci0: usize,
    cmap: &[usize],
    n: usize,
) {
    let width = cmap.len();
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let row = (ci0 + r) * n;
        for (j, &col) in cmap.iter().enumerate() {
            accr[j] = c[row + col];
        }
    }
    for p in 0..kc {
        let brow: &[f32; NR] = bpanel[p * NR..p * NR + NR].try_into().expect("panel line");
        let arow: &[f32; MR] = ablock[p * MR..p * MR + MR]
            .try_into()
            .expect("A block line");
        for r in 0..MR {
            let arp = arow[r];
            // Same skip as the dense kernels: an exact zero in A
            // contributes no operation at all.
            if arp == 0.0 {
                continue;
            }
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] = arp.mul_add(brow[j], accr[j]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let row = (ci0 + r) * n;
        for (j, &col) in cmap.iter().enumerate().take(width) {
            c[row + col] = accr[j];
        }
    }
}

/// One full output row via the reference axpy loop over the payload —
/// the leftover rows of a panel that do not fill an `MR`-row block.
fn reference_row_scattered(
    a: &[f32],
    b: &SparseTensor,
    c: &mut [f32],
    ai: usize,
    ci: usize,
    k: usize,
) {
    let n = b.cols;
    let nnz = b.col_map.len();
    let arow = &a[ai * k..ai * k + k];
    let crow = &mut c[ci * n..(ci + 1) * n];
    for (p, &ap) in arow.iter().enumerate() {
        if ap == 0.0 {
            continue;
        }
        let brow = &b.payload[p * nnz..(p + 1) * nnz];
        for (&bv, &j) in brow.iter().zip(&b.col_map) {
            crow[j] = ap.mul_add(bv, crow[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;
    use crate::{gemm, parallel};

    fn assert_bit_identical(x: &Tensor, y: &Tensor) {
        assert_eq!(x.dims(), y.dims());
        for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "element {i}: {a} vs {b}");
        }
    }

    /// Zeroes the column blocks of `b` whose index is not in `keep`.
    fn prune_blocks(b: &mut Tensor, block_cols: usize, keep: impl Fn(usize) -> bool) {
        let (rows, cols) = b.shape().as_matrix().unwrap();
        let data = b.as_mut_slice();
        for i in 0..rows {
            for j in 0..cols {
                if !keep(j / block_cols) {
                    data[i * cols + j] = 0.0;
                }
            }
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let mut rng = Pcg32::seed_from_u64(3);
        for (k, n, bc) in [(5, 7, 3), (16, 48, 16), (31, 50, 48), (8, 8, 13)] {
            let mut b = rng.randn(&[k, n], 1.0);
            prune_blocks(&mut b, bc, |blk| blk % 2 == 0);
            let sb = SparseTensor::from_dense(&b, bc).unwrap();
            assert_bit_identical(&sb.to_dense(), &b);
            assert_eq!(sb.total_blocks(), n.div_ceil(bc));
        }
    }

    #[test]
    fn negative_zero_keeps_its_block_and_round_trips() {
        // A block holding only -0.0 is NOT a zero block: packing it away
        // would lose the sign bit on reconstruction.
        let mut b = Tensor::zeros(&[2, 8]);
        b.as_mut_slice()[5] = -0.0;
        let sb = SparseTensor::from_dense(&b, 4).unwrap();
        assert_eq!(sb.nnz_blocks(), 1);
        let back = sb.to_dense();
        assert_bit_identical(&back, &b);
        assert!(back.as_slice()[5].is_sign_negative());
    }

    #[test]
    fn stats_match_packing() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut b = rng.randn(&[12, 50], 1.0);
        prune_blocks(&mut b, 16, |blk| blk == 1 || blk == 3);
        let sb = SparseTensor::from_dense(&b, 16).unwrap();
        let (nnz, total, cols) = column_block_stats(&b, 16).unwrap();
        assert_eq!((nnz, total, cols), (2, 4, 16 + 2)); // edge block is 2 wide
        assert_eq!(sb.nnz_blocks(), nnz);
        assert_eq!(sb.total_blocks(), total);
        assert_eq!(sb.nnz_cols(), cols);
        assert!((sb.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_matmul_bit_identical_to_dense_all_modes() {
        let mut rng = Pcg32::seed_from_u64(11);
        for (m, k, n, bc) in [
            (1, 1, 1, 1),
            (5, 7, 3, 2),
            (13, 29, 17, 5),
            (64, 48, 96, 16),
            (97, 31, 113, 48),
        ] {
            let a = rng.randn(&[m, k], 1.0);
            let mut b = rng.randn(&[k, n], 1.0);
            prune_blocks(&mut b, bc, |blk| blk % 3 != 1);
            let sb = SparseTensor::from_dense(&b, bc).unwrap();
            let reference = gemm::matmul(&a, &b).unwrap();
            for par in [
                Parallelism::Sequential,
                Parallelism::Threads(1),
                Parallelism::Threads(2),
                Parallelism::Threads(4),
                Parallelism::Auto,
            ] {
                assert_bit_identical(&matmul(&a, &sb, par).unwrap(), &reference);
                // And against the dense blocked backend, which is itself
                // bit-identical to the reference.
                assert_bit_identical(
                    &matmul(&a, &sb, par).unwrap(),
                    &parallel::matmul(&a, &b, par).unwrap(),
                );
            }
        }
    }

    #[test]
    fn zeros_in_a_and_signed_zero_accumulation() {
        let a = Tensor::from_vec(
            vec![
                0.0, 1.0, -0.0, 2.0, 0.0, 0.0, -1.5, 0.0, 3.0, 0.0, -0.0, 0.25,
            ],
            &[2, 6],
        )
        .unwrap();
        let mut b = Pcg32::seed_from_u64(5).randn(&[6, 49], 1.0);
        prune_blocks(&mut b, 16, |blk| blk != 1);
        let sb = SparseTensor::from_dense(&b, 16).unwrap();
        let reference = gemm::matmul(&a, &b).unwrap();
        for par in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Auto,
        ] {
            assert_bit_identical(&matmul(&a, &sb, par).unwrap(), &reference);
        }
    }

    #[test]
    fn fully_zero_weight_yields_zero_output() {
        let a = Pcg32::seed_from_u64(2).randn(&[9, 12], 1.0);
        let b = Tensor::zeros(&[12, 20]);
        let sb = SparseTensor::from_dense(&b, 8).unwrap();
        assert_eq!(sb.nnz_blocks(), 0);
        let out = matmul(&a, &sb, Parallelism::Auto).unwrap();
        assert_bit_identical(&out, &gemm::matmul(&a, &b).unwrap());
    }

    #[test]
    fn shape_and_argument_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(SparseTensor::from_dense(&b, 0).is_err());
        assert!(SparseTensor::from_dense(&Tensor::zeros(&[4]), 2).is_err());
        assert!(column_block_stats(&b, 0).is_err());
        let sb = SparseTensor::from_dense(&b, 2).unwrap();
        assert!(matmul(&a, &sb, Parallelism::Auto).is_err());
    }

    use proptest::prelude::*;

    fn sparse_case() -> impl Strategy<Value = (Tensor, Tensor, usize)> {
        (1usize..24, 1usize..40, 1usize..56, 1usize..24, 0u64..10_000).prop_map(
            |(m, k, n, bc, seed)| {
                let mut rng = Pcg32::seed_from_u64(seed);
                let a = rng.randn(&[m, k], 1.0);
                let mut b = rng.randn(&[k, n], 1.0);
                // Random block survival pattern driven by the seed.
                let total = n.div_ceil(bc);
                let keep: Vec<bool> = (0..total).map(|i| (seed >> (i % 60)) & 1 == 1).collect();
                prune_blocks(&mut b, bc, |blk| keep[blk]);
                (a, b, bc)
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random sparse patterns × shapes: pack/unpack is lossless.
        #[test]
        fn prop_pack_unpack_lossless((_a, b, bc) in sparse_case()) {
            let sb = SparseTensor::from_dense(&b, bc).unwrap();
            assert_bit_identical(&sb.to_dense(), &b);
            let (nnz, total, cols) = column_block_stats(&b, bc).unwrap();
            prop_assert_eq!(sb.nnz_blocks(), nnz);
            prop_assert_eq!(sb.total_blocks(), total);
            prop_assert_eq!(sb.nnz_cols(), cols);
        }

        /// Random sparse patterns × shapes: the sparse kernel is
        /// bit-identical to the dense reference in every mode.
        #[test]
        fn prop_sparse_kernel_bit_identical((a, b, bc) in sparse_case()) {
            let sb = SparseTensor::from_dense(&b, bc).unwrap();
            let reference = gemm::matmul(&a, &b).unwrap();
            for par in [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Auto] {
                assert_bit_identical(&matmul(&a, &sb, par).unwrap(), &reference);
            }
        }
    }
}
