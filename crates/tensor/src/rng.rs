//! Deterministic pseudo-random number generation.
//!
//! A self-contained PCG-32 generator keeps every experiment in the
//! repository bit-reproducible across platforms and crate versions — no
//! external RNG crate is needed, which also keeps the dependency policy in
//! `DESIGN.md` honest.

use crate::Tensor;

/// Permuted congruential generator (PCG-XSH-RR 64/32).
///
/// # Example
///
/// ```
/// use onesa_tensor::rng::Pcg32;
///
/// let mut a = Pcg32::seed_from_u64(42);
/// let mut b = Pcg32::seed_from_u64(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_INC: u64 = 1_442_695_040_888_963_407;

impl Pcg32 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: PCG_DEFAULT_INC | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Creates a generator with an independent stream id, for decorrelated
    /// parallel streams.
    pub fn seed_with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f32();
            if u1 > f32::EPSILON {
                let u2 = self.next_f32();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Tensor of i.i.d. standard-normal entries scaled by `std`.
    pub fn randn(&mut self, dims: &[usize], std: f32) -> Tensor {
        let volume: usize = dims.iter().product();
        let data = (0..volume).map(|_| self.normal() * std).collect();
        Tensor::from_vec(data, dims).expect("volume matches by construction")
    }

    /// Tensor of i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let volume: usize = dims.iter().product();
        let data = (0..volume).map(|_| self.uniform(lo, hi)).collect();
        Tensor::from_vec(data, dims).expect("volume matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Pcg32::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Pcg32::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn randn_shape() {
        let mut rng = Pcg32::seed_from_u64(8);
        let t = rng.randn(&[3, 4], 0.1);
        assert_eq!(t.dims(), &[3, 4]);
        assert!(t.as_slice().iter().all(|x| x.abs() < 1.0));
    }
}
