#!/usr/bin/env python3
"""Fail CI on broken intra-repo markdown links.

Scans every root-level markdown file, tests/README.md and every markdown
file under docs/ for inline links/images whose target is a repository
path (external URLs and pure #anchors are skipped), and checks that each
target exists relative to the linking file. Anchors are stripped before
the existence check — this guards file moves, not heading renames.

Usage: python3 scripts/check_markdown_links.py   (from anywhere)
Exit code 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def files_to_scan() -> list[Path]:
    files = sorted(REPO.glob("*.md"))
    files.append(REPO / "tests" / "README.md")
    files.extend(sorted((REPO / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def broken_links(md: Path) -> list[str]:
    broken = []
    text = md.read_text(encoding="utf-8")
    # Drop fenced code blocks: shell snippets aren't links.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in LINK_RE.findall(text):
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            broken.append(f"{md.relative_to(REPO)}: ({target}) -> missing {path}")
    return broken


def main() -> int:
    scanned = files_to_scan()
    failures = [b for md in scanned for b in broken_links(md)]
    for failure in failures:
        print(f"BROKEN LINK  {failure}", file=sys.stderr)
    print(f"checked {len(scanned)} markdown files: ", end="")
    if failures:
        print(f"{len(failures)} broken link(s)")
        return 1
    print("all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
