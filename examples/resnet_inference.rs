//! CNN inference under CPWL: train a small residual CNN on a synthetic
//! CIFAR-like task, then compare exact inference against the array's
//! CPWL + INT16 path at several granularities, and estimate how long the
//! real ResNet-50 would take on the array.
//!
//! ```sh
//! cargo run --release -p onesa-core --example resnet_inference
//! ```

use onesa_core::OneSa;
use onesa_data::{Difficulty, ImageDataset};
use onesa_nn::models::SmallCnn;
use onesa_nn::train::TrainConfig;
use onesa_nn::workloads;
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training a residual CNN on a synthetic CIFAR-10-like task…");
    let data = ImageDataset::generate("cifar10-like", 5, Difficulty::hard(10), (1, 12, 12), 24);
    let mut model = SmallCnn::new(42, 1, 10);
    let loss = model.fit(
        &data,
        &TrainConfig {
            epochs: 12,
            lr: 4e-3,
            batch_size: 16,
            seed: 42,
        },
    );
    println!("final training loss: {loss:.4}");

    let exact = model.evaluate(&data, &InferenceMode::Exact);
    println!("\n{:<22}{:>10}", "backend", "accuracy");
    println!("{:<22}{:>9.1}%", "exact f32", exact * 100.0);
    for g in [0.1f32, 0.25, 0.5, 1.0] {
        let mode = InferenceMode::cpwl(g)?;
        let acc = model.evaluate(&data, &mode);
        println!(
            "{:<22}{:>9.1}%   (Δ {:+.1})",
            mode.label(),
            acc * 100.0,
            (acc - exact) * 100.0
        );
    }

    // Full ResNet-50 timing on the paper's design point.
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let report = engine.run_workload(&workloads::resnet50(224));
    println!("\nResNet-50 (224², 4 GMACs) on the simulated array:\n  {report}");
    Ok(())
}
