//! Transformer inference under CPWL: train a two-block encoder on a
//! synthetic SST-2-like sentiment task, sweep granularities (softmax,
//! GELU and layer norm all go through the tables), and time BERT-base on
//! the array.
//!
//! ```sh
//! cargo run --release -p onesa-core --example bert_inference
//! ```

use onesa_core::OneSa;
use onesa_data::{Difficulty, TextDataset};
use onesa_nn::models::TinyBert;
use onesa_nn::train::TrainConfig;
use onesa_nn::workloads;
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training a 2-block encoder on a synthetic SST-2-like task…");
    let data = TextDataset::classification("sst2-like", 11, Difficulty::easy(2), 64, 16, 32);
    let mut model = TinyBert::new(42, data.vocab, data.seq_len, 2, 2);
    let loss = model.fit(
        &data,
        &TrainConfig {
            epochs: 6,
            lr: 2e-3,
            batch_size: 1,
            seed: 42,
        },
    );
    println!("final training loss: {loss:.4}");

    let exact = model.evaluate(&data, &InferenceMode::Exact);
    println!("\n{:<22}{:>10}", "backend", "accuracy");
    println!("{:<22}{:>9.1}%", "exact f32", exact * 100.0);
    for g in [0.1f32, 0.25, 0.5, 1.0] {
        let mode = InferenceMode::cpwl(g)?;
        let acc = model.evaluate(&data, &mode);
        println!(
            "{:<22}{:>9.1}%   (Δ {:+.1})",
            mode.label(),
            acc * 100.0,
            (acc - exact) * 100.0
        );
    }

    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let report = engine.run_workload(&workloads::bert_base(64));
    println!("\nBERT-base (seq 64, 5.5 GMACs) on the simulated array:\n  {report}");
    Ok(())
}
