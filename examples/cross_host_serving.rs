//! Cross-host serving: the shard pool as worker *processes* behind the
//! wire protocol, instead of threads in this process.
//!
//! ```sh
//! cargo build --release            # builds the onesa-shard-worker binary
//! cargo run --release --example cross_host_serving
//! ```
//!
//! Part 1 serves one mixed queue — GEMMs, nonlinears and repeated
//! compiled-CNN programs — three times through identical 2-shard pools:
//! in-process threads, spawned worker processes over Unix-domain
//! sockets, and worker processes over TCP. Every output is checked
//! bit-identical across the three backends (the wire moves raw `f32`
//! bits, so this is exact, not approximate), and the weight-cache
//! stats show the program's constants crossing each socket **once**
//! while every repeat rides a fingerprint reference.
//!
//! Part 2 is a live failover: a 3-shard process pool is loaded while
//! paused, one worker is SIGKILLed, and the gate opens. The dead
//! shard's windows re-execute on the survivors (execution is pure, so
//! the retry is safe), every ticket still resolves bit-identically,
//! and the summary records the failover.

use onesa_core::plan::Compile;
use onesa_core::serve::{
    AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, ShardBackend, Ticket,
};
use onesa_core::{default_worker_path, Parallelism, ProcessConfig, Request, Transport};
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::NonlinearFn;
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::SmallCnn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, Tensor};
use std::time::Instant;

/// The serving mix: shared-weight GEMMs, two nonlinears, and four
/// submissions of one compiled CNN program (so the weight cache has
/// repeats to elide).
fn build_mix() -> (Vec<Request>, usize) {
    let mut rng = Pcg32::seed_from_u64(2026);
    let w1 = rng.randn(&[128, 64], 1.0);
    let w2 = rng.randn(&[128, 96], 1.0);
    let mut requests = Vec::new();
    for i in 0..12 {
        let a = rng.randn(&[8 + (i % 4) * 8, 128], 1.0);
        requests.push(Request::gemm(a, [&w1, &w2][i % 2].clone()));
    }
    for i in 0..6 {
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Tanh
        };
        requests.push(Request::nonlinear(func, rng.randn(&[16, 32], 1.5)));
    }
    let cnn = SmallCnn::new(7, 1, 4);
    let mode = InferenceMode::cpwl(0.25).expect("paper granularity");
    let program = cnn.compile((&mode, (8, 8))).expect("CNN compiles");
    let program_bytes: usize = program
        .consts()
        .iter()
        .map(|c| 4 * c.as_slice().len())
        .sum();
    for _ in 0..4 {
        let x = rng.randn(&[1, 8, 8], 1.0);
        requests.push(Request::program(program.clone(), vec![x]));
    }
    (requests, program_bytes)
}

/// One pool lifetime (paused pre-load → resume → wait → finish);
/// returns outputs in submission order, the summary, and the
/// resume→finish wall time.
fn serve_once(
    backend: ShardBackend,
    shards: usize,
    requests: &[Request],
) -> (Vec<Tensor>, onesa_core::ServeSummary, f64) {
    let pool = ServeEngine::start(
        ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 8 })
            .with_routing(RoutePolicy::RoundRobin)
            .start_paused()
            .with_backend(backend),
    )
    .expect("pool starts");
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| pool.submit(r.clone()).expect("queue open"))
        .collect();
    let t0 = Instant::now();
    pool.resume();
    let outputs: Vec<Tensor> = tickets
        .into_iter()
        .map(|t| t.wait().expect("request served").output)
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    (outputs, pool.finish().expect("pool drains"), wall)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Some(worker) = default_worker_path() else {
        eprintln!(
            "onesa-shard-worker binary not found next to this example; \
             run `cargo build --release` first (or set ONESA_SHARD_WORKER)"
        );
        return Ok(());
    };
    println!(
        "== Same pool, three shard backends (worker: {}) ==",
        worker.display()
    );
    let (requests, program_bytes) = build_mix();
    let n = requests.len();

    let backends = [
        ("in-process", ShardBackend::InProcess),
        (
            "unix socket",
            ShardBackend::Process(ProcessConfig::new(Transport::Unix)),
        ),
        (
            "tcp socket",
            ShardBackend::Process(ProcessConfig::new(Transport::Tcp)),
        ),
    ];
    let mut reference: Option<Vec<Tensor>> = None;
    println!(
        "{:<12} {:>9} {:>12} {:>11} {:>11} {:>10}",
        "backend", "wall ms", "makespan ms", "full sends", "ref sends", "cache hit"
    );
    for (name, backend) in backends {
        let (outputs, summary, wall) = serve_once(backend, 2, &requests);
        match &reference {
            None => reference = Some(outputs),
            Some(want) => {
                for (i, (got, want)) in outputs.iter().zip(want).enumerate() {
                    assert!(
                        got.as_slice()
                            .iter()
                            .zip(want.as_slice())
                            .all(|(g, w)| g.to_bits() == w.to_bits()),
                        "{name}: request {i} differs from the in-process reference"
                    );
                }
            }
        }
        let cache = summary.wire_cache;
        println!(
            "{:<12} {:>9.2} {:>12.3} {:>11} {:>11} {:>9.0}%",
            name,
            wall * 1e3,
            summary.report.batched_seconds * 1e3,
            cache.full_sends,
            cache.ref_sends,
            cache.hit_ratio() * 100.0
        );
        if cache.ref_sends > 0 {
            println!(
                "             ({} KiB of program constants crossed each socket once; \
                 {} KiB elided by the weight cache)",
                program_bytes / 1024,
                cache.const_bytes_saved / 1024
            );
        }
    }
    println!("all {n} requests bit-identical across the three backends");

    println!("\n== Failover: SIGKILL one of three workers mid-load ==");
    let pool = ServeEngine::start(
        ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 4 })
            .start_paused()
            .with_backend(ShardBackend::Process(ProcessConfig::new(Transport::Unix))),
    )?;
    let pids = pool.worker_pids().to_vec();
    let mut rng = Pcg32::seed_from_u64(9);
    let w = rng.randn(&[64, 32], 1.0);
    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for i in 0..12 {
        let a = rng.randn(&[4 + i % 3, 64], 1.0);
        expected.push(gemm::matmul(&a, &w)?);
        tickets.push(pool.submit(Request::gemm(a, w.clone()))?);
    }
    // A table lookup too, to show nonlinears fail over identically.
    let tables = TableSet::for_granularity(0.25)?;
    let x = rng.randn(&[8, 16], 1.5);
    expected.push(tables.table(NonlinearFn::Gelu).unwrap().eval_tensor(&x)?);
    tickets.push(pool.submit(Request::nonlinear(NonlinearFn::Gelu, x))?);

    println!("workers: {pids:?}; killing {}", pids[0]);
    std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()?;
    pool.resume();
    for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
        let served = ticket.wait().expect("ticket survives the worker kill");
        assert!(
            served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(g, w)| g.to_bits() == w.to_bits()),
            "failover request {i} must stay bit-identical"
        );
    }
    let summary = pool.finish()?;
    let requeued: usize = summary.shards.iter().map(|s| s.requeued).sum();
    println!(
        "all {} tickets resolved bit-identically; failovers recorded: {}, \
         requests re-executed on survivors: {}",
        summary.report.requests, summary.failovers, requeued
    );
    assert_eq!(summary.failovers, 1);
    Ok(())
}
