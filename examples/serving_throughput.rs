//! Serving throughput: the parallel backend and the batched engine.
//!
//! ```sh
//! cargo run --release --example serving_throughput
//! ```
//!
//! Part 1 measures host GEMM throughput on a 512×512×512 matmul under
//! each [`Parallelism`] policy and reports the speedup of `Threads(4)`
//! over `Sequential` (the reference kernel). Results are bit-identical
//! across policies — only the wall clock changes.
//!
//! Part 2 pushes a queue of mixed GEMM/nonlinear requests through a
//! [`BatchEngine`] and prints its [`ServingReport`]: wall throughput,
//! the array cycles saved by coalescing, and latency percentiles.

use onesa_bench::time_best;
use onesa_core::{BatchEngine, OneSa, Parallelism, Request};
use onesa_cpwl::NonlinearFn;
use onesa_sim::ArrayConfig;
use onesa_tensor::parallel;
use onesa_tensor::rng::Pcg32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, k, n) = (512, 512, 512);
    let mut rng = Pcg32::seed_from_u64(42);
    let a = rng.randn(&[m, k], 1.0);
    let b = rng.randn(&[k, n], 1.0);
    let gflop = 2.0 * (m * k * n) as f64 / 1e9;

    println!("== GEMM {m}x{k}x{n} on the host backend ==");
    let (reference, seq_s) = time_best(5, || {
        parallel::matmul(&a, &b, Parallelism::Sequential).expect("shapes fit")
    });
    println!(
        "{:<12} {:8.1} ms   {:6.2} GFLOP/s",
        "seq",
        seq_s * 1e3,
        gflop / seq_s
    );
    let mut threads4_s = seq_s;
    for par in [
        Parallelism::Threads(1),
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ] {
        let (out, s) = time_best(5, || parallel::matmul(&a, &b, par).expect("shapes fit"));
        assert!(
            out.as_slice()
                .iter()
                .zip(reference.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel result must be bit-identical to sequential"
        );
        if par == Parallelism::Threads(4) {
            threads4_s = s;
        }
        println!(
            "{:<12} {:8.1} ms   {:6.2} GFLOP/s   ({:.2}x vs seq, bit-identical)",
            par.label(),
            s * 1e3,
            gflop / s,
            seq_s / s
        );
    }
    println!(
        "\nThreads(4) speedup vs Sequential: {:.2}x",
        seq_s / threads4_s
    );

    println!("\n== Batched serving on the 8x8, 16-MAC array ==");
    let engine = OneSa::with_parallelism(ArrayConfig::new(8, 16), Parallelism::Auto);
    let mut serving = BatchEngine::new(engine, 0.25)?;
    // A mixed queue: 24 activation batches against two shared weight
    // matrices, plus GELU/Sigmoid evaluations of varying size.
    let w1 = rng.randn(&[256, 128], 1.0);
    let w2 = rng.randn(&[256, 64], 1.0);
    for i in 0..24 {
        let rows = 8 + (i % 5) * 12;
        let w = if i % 3 == 0 { &w2 } else { &w1 };
        serving.submit(Request::gemm(rng.randn(&[rows, 256], 1.0), w.clone()));
    }
    for i in 0..8 {
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Sigmoid
        };
        serving.submit(Request::nonlinear(func, rng.randn(&[16 + i * 8, 64], 1.5)));
    }
    println!("queued {} requests", serving.pending());
    let run = serving.run()?;
    println!("{}", run.report);
    Ok(())
}
