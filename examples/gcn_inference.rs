//! GCN inference under CPWL: train a two-layer GCN on a synthetic
//! citation graph and confirm the paper's observation that shallow GCNs
//! barely degrade under CPWL (ReLU is exactly representable; only INT16
//! noise remains).
//!
//! ```sh
//! cargo run --release -p onesa-core --example gcn_inference
//! ```

use onesa_core::OneSa;
use onesa_data::{Difficulty, GraphDataset};
use onesa_nn::models::Gcn;
use onesa_nn::train::TrainConfig;
use onesa_nn::workloads;
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training a 2-layer GCN on a synthetic CORA-like graph…");
    let g = GraphDataset::generate("cora-like", 21, Difficulty::medium(7), 210, 32, 0.16);
    let mut model = Gcn::new(42, g.features, 16, g.classes);
    let loss = model.fit(
        &g,
        &TrainConfig {
            epochs: 10,
            lr: 1e-2,
            batch_size: 0,
            seed: 42,
        },
    );
    println!(
        "final training loss: {loss:.4} ({} nodes, {} classes)",
        g.nodes, g.classes
    );

    let exact = model.evaluate(&g, &InferenceMode::Exact);
    println!("\n{:<22}{:>10}", "backend", "accuracy");
    println!("{:<22}{:>9.1}%", "exact f32", exact * 100.0);
    for g_val in [0.1f32, 0.25, 0.5, 1.0] {
        let mode = InferenceMode::cpwl(g_val)?;
        let acc = model.evaluate(&g, &mode);
        println!(
            "{:<22}{:>9.1}%   (Δ {:+.1})",
            mode.label(),
            acc * 100.0,
            (acc - exact) * 100.0
        );
    }

    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let report = engine.run_workload(&workloads::gcn_reddit_like());
    println!("\nReddit-scale GCN (1.1 GMACs) on the simulated array:\n  {report}");
    Ok(())
}
