//! Structured pruning: the accuracy-for-speed trade, measured.
//!
//! ```sh
//! cargo run --release --example pruned_sweep
//! ```
//!
//! Trains a GCN whose hidden layer is four prune blocks wide, then
//! sweeps [`magnitude_prune_columns`] keep fractions. At every rung:
//!
//! * the optimizer's prune-pack pass attaches the sparsity attribute
//!   and the program's `modeled_macs` drop by exactly the credited
//!   column share — the same number size-capped admission and
//!   energy-aware routing weigh;
//! * top-1 agreement against the unpruned model is printed and pinned
//!   (the run is fully seeded, so the bounds are exact floors — the
//!   same pattern as the degrade ladder's bit-identity pins);
//! * a served batch surfaces the skipped blocks in its
//!   `ServingReport`.
//!
//! Like granularity degradation, pruning changes *which* program runs,
//! never how it runs: pruned logits stay bit-identical to the direct
//! layer-by-layer reference on the pruned weights.

use onesa_core::{BatchEngine, OneSa, Request};
use onesa_data::{Difficulty, GraphDataset};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::Gcn;
use onesa_nn::prune::magnitude_prune_columns;
use onesa_nn::train::TrainConfig;
use onesa_plan::{Compile, OptLevel, PRUNE_BLOCK_COLS};
use onesa_sim::ArrayConfig;
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::stats;

/// (keep fraction, pinned top-1 agreement floor vs the unpruned model).
/// The floors are measured on this seeded run and rounded down: they
/// document the trade, and CI catches a kernel or pass change that
/// silently alters pruned predictions.
const RUNGS: [(f32, f64); 4] = [(1.0, 1.0), (0.75, 0.98), (0.5, 0.95), (0.25, 0.90)];

fn top1(logits: &onesa_tensor::Tensor) -> Vec<usize> {
    let (n, c) = logits.shape().as_matrix().expect("matrix");
    (0..n)
        .map(|i| stats::argmax(&logits.as_slice()[i * c..(i + 1) * c]).expect("non-empty row"))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = GraphDataset::generate("communities", 4, Difficulty::easy(3), 60, 8, 0.3);
    let mut model = Gcn::new(6, 8, 4 * PRUNE_BLOCK_COLS, 3);
    model.fit(
        &g,
        &TrainConfig {
            epochs: 8,
            lr: 1e-2,
            batch_size: 0,
            seed: 6,
        },
    );
    let mode = InferenceMode::Exact;
    let reference = top1(&model.logits(&g, &mode));
    let dense_macs = model
        .compile((&mode, &g))?
        .optimize(OptLevel::Standard)?
        .modeled_macs();

    println!(
        "== magnitude pruning sweep: {}-wide hidden layer, {}-column blocks ==",
        4 * PRUNE_BLOCK_COLS,
        PRUNE_BLOCK_COLS
    );
    for (keep, floor) in RUNGS {
        let mut pruned = model.clone();
        let report = pruned.prune_hidden(keep)?;
        let program = pruned.compile((&mode, &g))?.optimize(OptLevel::Standard)?;
        let (skipped, total) = program.sparse_blocks();
        assert_eq!(
            (report.blocks_zeroed as u64, skipped),
            (report.blocks_zeroed as u64, report.blocks_zeroed as u64),
            "the pass credits exactly the pruned blocks"
        );
        // The modeled cost credits the skipped column share of the W1
        // GEMM — admission budgets and energy routing see this number.
        let macs = program.modeled_macs();
        assert!(
            (skipped == 0) == (macs == dense_macs),
            "pruning must show in the modeled cost exactly when blocks skip"
        );

        // Pruned predictions agree with the unpruned model above the
        // pinned floor — and stay bit-identical to the direct path.
        let logits = pruned.logits(&g, &mode);
        assert_eq!(logits, pruned.logits_direct(&g, &mode));
        let agree = top1(&logits)
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a == b)
            .count() as f64
            / reference.len() as f64;
        assert!(
            agree >= floor,
            "keep={keep}: agreement {agree:.2} fell below the pinned floor {floor}"
        );

        // Serve the pruned program: the report surfaces the skip.
        let mut engine = BatchEngine::new(
            OneSa::with_parallelism(ArrayConfig::new(8, 16), Parallelism::Sequential),
            0.25,
        )?;
        engine.submit(Request::program(program, vec![g.x.clone()]));
        let run = engine.run()?;
        assert_eq!(
            (run.report.blocks_skipped, run.report.blocks_total),
            (skipped, total)
        );

        println!(
            "keep {:>4.2}: {}/{} blocks live, modeled MACs {:>5.1}% of dense, \
             top-1 agreement {:>5.1}% (floor {:>3.0}%), accuracy {:.2}",
            keep,
            report.blocks_total - report.blocks_zeroed,
            report.blocks_total,
            100.0 * macs as f64 / dense_macs as f64,
            100.0 * agree,
            100.0 * floor,
            pruned.evaluate(&g, &mode),
        );
    }

    // The helper is model-agnostic: prune any weight matrix directly.
    let mut w = onesa_tensor::rng::Pcg32::seed_from_u64(9).randn(&[32, 64], 1.0);
    let r = magnitude_prune_columns(&mut w, PRUNE_BLOCK_COLS, 0.5)?;
    println!(
        "-> standalone: kept {:.0}% of a [32, 64] matrix's blocks ({} zeroed)",
        r.kept_fraction() * 100.0,
        r.blocks_zeroed
    );
    Ok(())
}
