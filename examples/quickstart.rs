//! Quickstart: evaluate a nonlinear function on the ONE-SA array.
//!
//! ```sh
//! cargo run -p onesa-core --example quickstart
//! ```
//!
//! Shows the paper's three-step CPWL flow on real data: build a table,
//! run Intermediate Parameter Fetching + a Matrix Hadamard Product
//! through the engine, and compare against the exact function — then run
//! a GEMM on the same fabric.

use onesa_core::OneSa;
use onesa_cpwl::{NonlinearFn, PwlTable};
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's evaluation design point: 8×8 PEs, 16 MACs each.
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    println!("ONE-SA engine: {:?} PEs, {} MACs/PE", 64, 16);
    println!("FPGA cost: {:?}", engine.cost());

    // 1. Capped piecewise linearization of GELU at granularity 0.25.
    let table = PwlTable::builder(NonlinearFn::Gelu)
        .granularity(0.25)
        .build()?;
    println!(
        "\nGELU table: {} segments over {:?}, {} bytes preloaded into L3",
        table.n_segments(),
        table.range(),
        table.table_bytes()
    );

    // 2. Evaluate a batch of activations through IPF + MHP.
    let mut rng = Pcg32::seed_from_u64(7);
    let x = rng.randn(&[64, 64], 1.5);
    let (y, stats) = engine.nonlinear(&table, &x)?;
    let worst = x
        .as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(&xv, &yv)| (yv - NonlinearFn::Gelu.eval(xv)).abs())
        .fold(0.0f32, f32::max);
    println!(
        "\nnonlinear pass: {} evaluations in {} cycles ({:.3} µs, {:.2} GNFS)",
        stats.nonlinear_evals,
        stats.cycles(),
        stats.seconds() * 1e6,
        stats.gnfs()
    );
    println!("max |error| vs exact GELU: {worst:.4}");

    // 3. The same fabric runs GEMM natively.
    let a = rng.randn(&[128, 96], 1.0);
    let b = rng.randn(&[96, 64], 1.0);
    let (c, gstats) = engine.gemm(&a, &b)?;
    println!(
        "\nGEMM 128x96x64 → C {}: {} cycles, {:.1} GOPS (peak {:.1})",
        c.shape(),
        gstats.cycles(),
        gstats.gops(),
        engine.config().peak_gops()
    );
    let _ = Tensor::zeros(&[1]);
    Ok(())
}
