//! Sharded asynchronous serving: one workload, many simulated arrays.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```
//!
//! Part 1 pre-loads a mixed GEMM/nonlinear serving queue into a
//! [`ServeEngine`] pool of 1, 2 and 4 shards (each shard one simulated
//! 8×8, 16-MAC array with its own `BatchEngine`), opens the admission
//! gate, and compares:
//!
//! * **modeled throughput** — requests per simulated-array-second of the
//!   pool's makespan (the busiest shard; the arrays run concurrently).
//!   Deterministic, and the quantity `BENCH_serving_async.json` pins:
//!   4 shards must clear ≥1.5× the 1-shard pool (it lands near 4×).
//! * **host wall-clock** — machine-dependent; shard workers are real
//!   threads, so this follows core count (≈1× on a 1-core host).
//!
//! Every output is checked bit-identical to the single-shard sequential
//! reference before anything is reported.
//!
//! Part 2 routes real model inference through the pool: a batch of
//! `SmallCnn` images is split at the classifier boundary
//! (`pooled_features` + `classifier`), and the final shared-weight GEMMs
//! go through the admission queue, land on one shard under
//! weight-affinity routing, and coalesce into a single kernel call.

use onesa_core::serve::{AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, Ticket};
use onesa_core::{Parallelism, Request};
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::NonlinearFn;
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::SmallCnn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, Tensor};
use std::time::Instant;

/// The serving mix: 36 GEMMs over three shared weight matrices plus 12
/// nonlinear evaluations over two functions.
fn build_mix() -> (Vec<Request>, Vec<Tensor>) {
    let mut rng = Pcg32::seed_from_u64(2026);
    let tables = TableSet::for_granularity(0.25).expect("paper granularity");
    let w1 = rng.randn(&[256, 128], 1.0);
    let w2 = rng.randn(&[256, 64], 1.0);
    let w3 = rng.randn(&[256, 96], 1.0);
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for i in 0..36 {
        let rows = 16 + (i % 5) * 16;
        let w = [&w1, &w2, &w3][i % 3];
        let a = rng.randn(&[rows, 256], 1.0);
        expected.push(gemm::matmul(&a, w).expect("mix shapes agree"));
        requests.push(Request::gemm(a, w.clone()));
    }
    for i in 0..12 {
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Sigmoid
        };
        let x = rng.randn(&[32 + (i % 4) * 16, 64], 1.5);
        expected.push(
            tables
                .table(func)
                .expect("standard set")
                .eval_tensor(&x)
                .expect("shape preserved"),
        );
        requests.push(Request::nonlinear(func, x));
    }
    (requests, expected)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (requests, expected) = build_mix();
    let n_requests = requests.len();
    println!("== Serving {n_requests} mixed requests across 1 / 2 / 4 simulated arrays ==");
    println!(
        "{:<7} {:>9} {:>9} {:>12} {:>12} {:>8}",
        "shards", "wall ms", "wall rps", "makespan ms", "modeled rps", "windows"
    );

    let mut makespans = Vec::new();
    let mut walls = Vec::new();
    for shards in [1usize, 2, 4] {
        // Pre-load the queue while the admission gate is closed, then
        // open it: one deterministic batching window, clean timing.
        let pool = ServeEngine::start(
            ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Threads(1))
                .with_admission(AdmissionPolicy::Fifo { window: 64 })
                .with_routing(RoutePolicy::LeastLoaded)
                .start_paused(),
        )?;
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| pool.submit(r.clone()).expect("queue open"))
            .collect();
        let t0 = Instant::now();
        pool.resume();
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            let served = ticket.wait().expect("request served");
            assert!(
                served
                    .output
                    .as_slice()
                    .iter()
                    .zip(want.as_slice())
                    .all(|(g, w)| g.to_bits() == w.to_bits()),
                "sharded result must be bit-identical to the sequential reference"
            );
        }
        let summary = pool.finish().expect("pool drains cleanly");
        let wall = t0.elapsed().as_secs_f64();
        let makespan = summary.report.batched_seconds;
        println!(
            "{:<7} {:>9.2} {:>9.0} {:>12.3} {:>12.0} {:>8}",
            shards,
            wall * 1e3,
            n_requests as f64 / wall,
            makespan * 1e3,
            n_requests as f64 / makespan,
            summary.windows
        );
        for s in &summary.shards {
            println!(
                "        shard {}: {:>2} req, {:>2} batches, {:.3} ms array, occupancy {:.0}%",
                s.shard,
                s.requests,
                s.batches,
                s.array_seconds * 1e3,
                s.occupancy * 100.0
            );
        }
        makespans.push(makespan);
        walls.push(wall);
    }

    let modeled_speedup = makespans[0] / makespans[2];
    let wall_speedup = walls[0] / walls[2];
    println!(
        "\n4 shards vs 1: modeled serving throughput {modeled_speedup:.2}x \
         (deterministic), host wall {wall_speedup:.2}x (machine-dependent)"
    );
    assert!(
        modeled_speedup >= 1.5,
        "sharding must lift modeled serving throughput by >=1.5x at 4 shards \
         (got {modeled_speedup:.2}x)"
    );

    println!("\n== Model batch inference through the pool ==");
    // Split SmallCnn at the classifier boundary and serve the final
    // shared-weight GEMMs of the whole batch through a 4-shard pool.
    let mode = InferenceMode::cpwl(0.25)?;
    let cnn = SmallCnn::new(7, 2, 4);
    let mut rng = Pcg32::seed_from_u64(77);
    let images: Vec<Tensor> = (0..8).map(|_| rng.randn(&[2, 8, 8], 1.0)).collect();
    let feats: Vec<Tensor> = images
        .iter()
        .map(|x| cnn.pooled_features(x, &mode))
        .collect();
    let pool = ServeEngine::start(
        ServeConfig::uniform(4, ArrayConfig::new(8, 16), Parallelism::Threads(1))
            .with_routing(RoutePolicy::WeightAffinity),
    )?;
    let fc = cnn.classifier();
    let logits = pool.classify_batch(&feats, &fc.w.value, fc.b.value.as_slice())?;
    for (x, served) in images.iter().zip(&logits) {
        assert_eq!(
            served,
            &cnn.logits(x, &mode),
            "pool-served logits must be bit-identical to per-sample inference"
        );
    }
    let summary = pool.finish().expect("pool drains cleanly");
    println!(
        "{} images, {} classifier GEMMs -> {} coalesced kernel call(s) under \
         weight-affinity routing; logits bit-identical to per-sample inference",
        images.len(),
        summary.report.requests,
        summary.report.gemm_groups
    );
    Ok(())
}
