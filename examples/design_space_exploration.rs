//! Design-space exploration: sweep array dimension and MAC count, run
//! the BERT-base workload on every design, and print the
//! latency/power/efficiency landscape with its Pareto frontier — the
//! workflow behind the paper's Fig 10 and the "16 MACs is the sweet
//! spot" conclusion.
//!
//! ```sh
//! cargo run --release -p onesa-core --example design_space_exploration
//! ```

use onesa_core::OneSa;
use onesa_nn::workloads;
use onesa_sim::ArrayConfig;

fn main() {
    let w = workloads::bert_base(64);
    println!(
        "workload: {} ({:.2} GMACs)\n",
        w.name,
        w.total_macs() as f64 / 1e9
    );
    println!(
        "{:<8}{:<6}{:>12}{:>10}{:>10}{:>12}{:>9}",
        "PEs", "MACs", "latency ms", "GOPS", "power W", "GOPS/W", "pareto"
    );

    let mut rows = Vec::new();
    for dim in [4usize, 8, 16] {
        for macs in [4usize, 8, 16, 32] {
            let engine = OneSa::new(ArrayConfig::new(dim, macs));
            let r = engine.run_workload(&w);
            rows.push((
                dim * dim,
                macs,
                r.latency_ms(),
                r.gops(),
                r.power_w,
                r.gops_per_watt(),
            ));
        }
    }
    let pareto: Vec<bool> = rows
        .iter()
        .map(|&(_, _, l, _, p, _)| !rows.iter().any(|&(_, _, l2, _, p2, _)| l2 < l && p2 < p))
        .collect();
    let mut best: Option<(usize, usize, f64)> = None;
    for (&(pes, macs, l, gops, p, eff), &is_pareto) in rows.iter().zip(&pareto) {
        println!(
            "{:<8}{:<6}{:>12.2}{:>10.1}{:>10.2}{:>12.2}{:>9}",
            pes,
            macs,
            l,
            gops,
            p,
            eff,
            if is_pareto { "*" } else { "" }
        );
        if best.map(|(_, _, e)| eff > e).unwrap_or(true) {
            best = Some((pes, macs, eff));
        }
    }
    if let Some((pes, macs, eff)) = best {
        println!(
            "\nmost efficient design: {pes} PEs × {macs} MACs at {eff:.2} GOPS/W \
             (the paper picks 64 PEs × 16 MACs)"
        );
    }
}
