//! Continuous batching demo: four decoding sessions generate
//! concurrently through one [`ServeEngine`], their per-token decode
//! steps coalescing into shared-weight GEMM groups — then the same
//! workload runs one session at a time, and the report counts the
//! difference.
//!
//! ```sh
//! cargo run --release --example continuous_batching
//! ```
//!
//! Three things are asserted, not just printed:
//!
//! * both schedules produce **bit-identical** token streams, equal to
//!   the no-cache recompute-from-scratch reference
//!   ([`TinyCausalLm::generate_direct`]) — scheduling changes *when*
//!   work runs, never *what* it computes;
//! * continuous batching needs **at least 2× fewer GEMM kernel groups**
//!   than sequential serving (it actually lands near 4× here: four
//!   sessions' steps share every weight-stationary load);
//! * the session table ends the run clean — every session closed,
//!   nothing orphaned.

use onesa_core::serve::{
    AdmissionPolicy, InterleavePolicy, RoutePolicy, ServeConfig, ServeEngine, ServeSummary,
    SessionId, Ticket,
};
use onesa_core::{Parallelism, Program};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::TinyCausalLm;
use onesa_sim::ArrayConfig;
use onesa_tensor::stats;

const TOKENS: usize = 5;

fn argmax(logits: &[f32]) -> usize {
    stats::argmax(logits).expect("non-empty vocabulary")
}

fn engine(window: usize) -> ServeEngine {
    ServeEngine::start(
        ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window })
            .with_routing(RoutePolicy::WeightAffinity)
            .with_interleave(InterleavePolicy::DecodeFirst),
    )
    .expect("pool starts")
}

fn prefill(
    engine: &ServeEngine,
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    p: &[usize],
) -> (SessionId, Ticket) {
    let sid = engine.open_session();
    let program = Program::clone(&lm.compiled_prefill(mode, p.len()));
    let t = engine
        .submit_prefill(sid, program, vec![TinyCausalLm::ids_tensor(p)], p.len())
        .expect("prefill submits");
    (sid, t)
}

fn decode_step(
    engine: &ServeEngine,
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    sid: SessionId,
    tok: usize,
) -> Ticket {
    let ctx = engine.session_context_rows(sid).expect("session live");
    let program = Program::clone(&lm.compiled_decode(mode, ctx));
    engine
        .submit_decode(sid, program, vec![TinyCausalLm::ids_tensor(&[tok])])
        .expect("decode submits")
}

/// Continuous batching: every round submits one step for *all* sessions
/// before waiting any, so each admission window carries four decode
/// steps whose GEMMs against the shared model weights coalesce.
fn serve_batched(
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    prompts: &[Vec<usize>],
) -> (Vec<Vec<usize>>, ServeSummary) {
    let pool = engine(2 * prompts.len());
    // Each wave is staged behind `pause()` so it lands in a single
    // admission window — the decode steps of a round only exist once
    // the previous round's outputs are in, so without staging the
    // admitter's greedy fill would dispatch them one by one.
    pool.pause();
    let waves: Vec<(SessionId, Ticket)> = prompts
        .iter()
        .map(|p| prefill(&pool, lm, mode, p))
        .collect();
    pool.resume();
    let mut sessions = Vec::new();
    let mut next = Vec::new();
    for (sid, t) in waves {
        sessions.push(sid);
        next.push(argmax(&t.wait().expect("prefill serves").output.into_vec()));
    }
    let mut out: Vec<Vec<usize>> = next.iter().map(|&t| vec![t]).collect();
    for _ in 1..TOKENS {
        pool.pause();
        let tickets: Vec<Ticket> = sessions
            .iter()
            .zip(&next)
            .map(|(&sid, &tok)| decode_step(&pool, lm, mode, sid, tok))
            .collect();
        pool.resume();
        for (i, t) in tickets.into_iter().enumerate() {
            next[i] = argmax(&t.wait().expect("decode serves").output.into_vec());
            out[i].push(next[i]);
        }
    }
    for &sid in &sessions {
        assert!(pool.close_session(sid));
    }
    (out, pool.finish().expect("pool drains"))
}

/// The contrast schedule: one session runs to completion before the
/// next opens, every window holds a single step — zero cross-session
/// coalescing, same math.
fn serve_sequential(
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    prompts: &[Vec<usize>],
) -> (Vec<Vec<usize>>, ServeSummary) {
    let pool = engine(1);
    let mut out = Vec::new();
    for p in prompts {
        let (sid, t) = prefill(&pool, lm, mode, p);
        let mut tok = argmax(&t.wait().expect("prefill serves").output.into_vec());
        let mut stream = vec![tok];
        for _ in 1..TOKENS {
            let t = decode_step(&pool, lm, mode, sid, tok);
            tok = argmax(&t.wait().expect("decode serves").output.into_vec());
            stream.push(tok);
        }
        assert!(pool.close_session(sid));
        out.push(stream);
    }
    (out, pool.finish().expect("pool drains"))
}

fn main() {
    let lm = TinyCausalLm::new(5, 24, 16, 2, true);
    let mode = InferenceMode::cpwl(0.25).expect("paper granularity");
    // Equal-length prompts keep each round's decode programs identical
    // across sessions (same context), which is what lets their stages
    // share one GEMM group per weight. Eight sessions, because the
    // attention GEMMs (scores, att x V — per-session data on both
    // sides) can never coalesce: with w shared-weight and d
    // data-dependent GEMM stages per step, the group ratio is
    // N(w+d) / (w+Nd), and this model shape (w=13, d=8 at 2 layers x
    // 2 heads) needs N >= 8 concurrent sessions to clear 2x.
    let prompts: Vec<Vec<usize>> = vec![
        vec![3, 1, 4],
        vec![2, 7, 9],
        vec![5, 9, 2],
        vec![8, 0, 6],
        vec![1, 2, 3],
        vec![9, 8, 7],
        vec![4, 4, 4],
        vec![6, 0, 2],
    ];
    let reference: Vec<Vec<usize>> = prompts
        .iter()
        .map(|p| lm.generate_direct(p, TOKENS, &mode))
        .collect();

    let (batched_out, batched) = serve_batched(&lm, &mode, &prompts);
    let (sequential_out, sequential) = serve_sequential(&lm, &mode, &prompts);
    assert_eq!(
        batched_out, reference,
        "batched decoding must be bit-identical"
    );
    assert_eq!(
        sequential_out, reference,
        "sequential decoding must be bit-identical"
    );

    for (p, stream) in prompts.iter().zip(&batched_out) {
        println!("prompt {p:?} -> {stream:?}");
    }
    println!();

    let (b, s) = (batched.report.gemm_groups, sequential.report.gemm_groups);
    let ratio = s as f64 / b as f64;
    println!("GEMM kernel groups: {s} sequential vs {b} continuous-batched ({ratio:.1}x fewer)");
    println!(
        "decode p50/p95 latency: {:.1} us / {:.1} us over {} steps",
        batched.decode.latency_percentile(50.0) * 1e6,
        batched.decode.latency_percentile(95.0) * 1e6,
        batched.decode.requests,
    );
    println!(
        "modeled decode throughput: {:.0} tokens/s (vs {:.0} sequential)",
        batched.decode.tokens as f64 / batched.report.batched_seconds,
        sequential.decode.tokens as f64 / sequential.report.batched_seconds,
    );
    println!("sessions: {:?}", batched.sessions);

    assert!(
        s >= 2 * b,
        "continuous batching must coalesce at least 2x fewer GEMM groups \
         ({s} sequential vs {b} batched)"
    );
    assert_eq!(batched.sessions.live, 0, "no orphaned sessions");
    assert_eq!(
        batched.sessions.opened, batched.sessions.closed,
        "every session closed"
    );
    println!("\ncontinuous batching OK: bit-identical streams, {ratio:.1}x fewer GEMM groups");
}
