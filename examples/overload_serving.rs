//! Degrade-don't-drop overload serving and the energy-aware elastic
//! shard pool.
//!
//! ```sh
//! cargo run --release --example overload_serving
//! ```
//!
//! Part 1 saturates a pool with CPWL program requests whose deadlines
//! are already in the past when the admission gate opens (the
//! deterministic stand-in for a queue that has blown its SLO):
//!
//! * the **baseline** pool (no degrade ladder) expires every one of
//!   them — answers are simply dropped;
//! * the **degrading** pool re-compiles each at the coarsest ladder
//!   rung and serves 100% of the admitted requests: `expired == 0`,
//!   `degraded_fraction > 0`, and every degraded answer is
//!   bit-identical to a solo run of the same network compiled directly
//!   at that granularity — degrading trades table resolution, never
//!   numerical reproducibility.
//!
//! Part 2 runs the same light trickle through an always-on pool and an
//! elastic pool ([`PoolPolicy::Elastic`]). The elastic pool parks the
//! shards the trickle doesn't need, pays idle/zero power for them, and
//! must land at or below the always-on pool's modeled energy with
//! bit-identical outputs.

use onesa_core::plan::{Compile, TableCache};
use onesa_core::serve::{
    AdmissionPolicy, DegradePolicy, PoolPolicy, RoutePolicy, ServeConfig, ServeEngine, ServeError,
    Ticket,
};
use onesa_core::{Parallelism, Request};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::SmallCnn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

const LADDER: [f32; 2] = [0.5, 1.0];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cnn = SmallCnn::new(7, 1, 4);
    let mode = InferenceMode::cpwl(0.25)?;
    let program = cnn.compile((&mode, (8, 8)))?;
    let coarse = program.with_granularity(*LADDER.last().unwrap())?;
    let mut rng = Pcg32::seed_from_u64(2026);
    let xs: Vec<Tensor> = (0..12).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();

    println!(
        "== Part 1: saturation — {} CNN requests past their deadline ==",
        xs.len()
    );
    let config = || {
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Deadline {
                window: 4,
                drop_expired: true,
            })
            .start_paused()
    };
    let submit_all = |pool: &ServeEngine| -> Vec<Ticket> {
        let tickets = xs
            .iter()
            .map(|x| {
                pool.submit_with_deadline(Request::program(program.clone(), vec![x.clone()]), 0)
                    .expect("queue open")
            })
            .collect();
        // Let the admission clock pass deadline 0 before the gate opens.
        std::thread::sleep(std::time::Duration::from_millis(2));
        pool.resume();
        tickets
    };

    // Baseline: no ladder — the saturated queue sheds every request.
    let baseline = ServeEngine::start(config())?;
    let mut dropped = 0usize;
    for t in submit_all(&baseline) {
        match t.wait() {
            Err(ServeError::DeadlineExpired { .. }) => dropped += 1,
            other => panic!("baseline should expire, got {other:?}"),
        }
    }
    let baseline_summary = baseline.finish()?;
    println!(
        "baseline (no ladder):  served {:>2}, expired {:>2}",
        baseline_summary.report.requests, baseline_summary.expired
    );
    assert!(
        baseline_summary.expired > 0,
        "the baseline must be saturated"
    );

    // Degrade ladder: the same traffic is rescued at the coarsest rung.
    let degrading = ServeEngine::start(config().with_degrade(DegradePolicy::new(LADDER.to_vec())))?;
    let tickets = submit_all(&degrading);
    let mut cache = TableCache::new();
    for (t, x) in tickets.into_iter().zip(&xs) {
        let served = t.wait().expect("degrade-don't-drop");
        let info = served.degrade.expect("saturated request degrades");
        let solo = coarse.run(std::slice::from_ref(x), Parallelism::Sequential, &mut cache)?;
        assert!(
            served
                .output
                .as_slice()
                .iter()
                .zip(solo.output.as_slice())
                .all(|(g, w)| g.to_bits() == w.to_bits()),
            "degraded output must be bit-identical to the solo run at g={}",
            info.served
        );
    }
    let summary = degrading.finish()?;
    println!(
        "degrade ladder {:?}: served {:>2}, expired {:>2}, degraded fraction {:.0}%",
        LADDER,
        summary.report.requests,
        summary.expired,
        summary.degraded_fraction() * 100.0
    );
    assert_eq!(summary.expired, 0, "the ladder must serve everything");
    assert!(summary.degraded_fraction() > 0.0);
    assert_eq!(
        summary.report.requests,
        xs.len(),
        "100% of admitted requests served"
    );
    println!(
        "-> same saturation: baseline drops {} answers, the ladder serves all {} \
         (accuracy traded at granularity {})",
        dropped,
        xs.len(),
        LADDER.last().unwrap()
    );

    println!("\n== Part 2: low load — always-on vs elastic 4-shard pool ==");
    let trickle = |pool: PoolPolicy| -> Result<_, Box<dyn std::error::Error>> {
        let engine = ServeEngine::start(
            ServeConfig::uniform(4, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Fifo { window: 2 })
                .with_routing(RoutePolicy::EnergyAware)
                .with_pool(pool),
        )?;
        let mut outputs = Vec::new();
        for x in &xs {
            // Serial submits: a trickle that never needs the whole pool.
            let t = engine.submit(Request::program(program.clone(), vec![x.clone()]))?;
            outputs.push(t.wait().expect("served").output);
        }
        Ok((outputs, engine.finish()?))
    };
    let (fixed_out, fixed) = trickle(PoolPolicy::AlwaysOn)?;
    let (elastic_out, elastic) = trickle(PoolPolicy::Elastic {
        min_active: 1,
        scale_up_depth: 4,
        idle_windows: 1,
    })?;
    for (f, e) in fixed_out.iter().zip(&elastic_out) {
        assert!(
            f.as_slice()
                .iter()
                .zip(e.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "power management must never change outputs"
        );
    }
    let report = |name: &str, s: &onesa_core::ServeSummary| {
        println!(
            "{name:<10} modeled {:>8.3} mJ ({:>6.3} mJ/req), shard-windows \
             {} active / {} idle / {} off",
            s.power.modeled_joules * 1e3,
            s.modeled_joules_per_request() * 1e3,
            s.power.active_shard_windows,
            s.power.idle_shard_windows,
            s.power.off_shard_windows
        );
    };
    report("always-on", &fixed);
    report("elastic", &elastic);
    assert!(
        elastic.power.modeled_joules <= fixed.power.modeled_joules,
        "the elastic pool must not burn more modeled energy at low load"
    );
    assert!(
        elastic.power.off_shard_windows > 0,
        "unused shards must park"
    );
    println!(
        "-> elastic pool saves {:.0}% modeled energy on this trickle, outputs bit-identical",
        (1.0 - elastic.power.modeled_joules / fixed.power.modeled_joules) * 100.0
    );
    Ok(())
}
