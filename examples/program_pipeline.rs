//! Whole networks as first-class serving requests: compile models to
//! operator-graph `Program`s and execute them through the batch and
//! serve engines, coalescing across concurrent programs at every stage.
//!
//! ```sh
//! cargo run --release --example program_pipeline
//! ```
//!
//! The demo:
//!
//! 1. compiles a residual CNN and a transformer encoder to
//!    `onesa_core::plan::Program`s (via `onesa_nn`'s `Compile` impls)
//!    and runs the optimizer pipeline over them, printing each pass's
//!    `PassStats` (boundary elisions, CSE shares, fusions),
//! 2. submits several instances of each to one `BatchEngine` and shows
//!    the per-stage kernel-group accounting — shared-weight GEMM
//!    stacking and shared-table IPF concatenation collapse each stage's
//!    ops into one kernel call, at *every* layer rather than only the
//!    final classifier,
//! 3. routes the same whole-network requests through an asynchronous
//!    `ServeEngine` pool under weight-affinity routing, where per-op
//!    `ExecStats` roll into the pool's `ServingReport`.
//!
//! Everything is bit-identical to the models' direct layer-by-layer
//! inference — asserted below, not just claimed.

use onesa_core::plan::{Compile, OptLevel};
use onesa_core::serve::{AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, Ticket};
use onesa_core::{BatchEngine, OneSa, Parallelism};
use onesa_nn::models::{SmallCnn, TinyBert};
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mode = InferenceMode::cpwl(0.25)?;
    let cnn = SmallCnn::new(11, 1, 3);
    let bert = TinyBert::new(5, 32, 12, 2, 1);
    let mut rng = Pcg32::seed_from_u64(2026);

    // ---- 1. compile whole networks to Program IR and optimize -------
    let cnn_raw = cnn.compile((&mode, (8, 8)))?;
    let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    let bert_raw = bert.compile((&mode, seq.len()))?;
    println!("compiled programs ({}):", mode.label());
    for p in [&cnn_raw, &bert_raw] {
        println!(
            "  {:<12} {:>3} stages, {:>8} modeled MACs, output {:?}",
            p.name(),
            p.stages(),
            p.modeled_macs(),
            p.output_shape()
        );
    }

    // The serving wrappers run the bit-identical Standard level; the
    // opt-in Fusion level additionally folds Affine+ReLU pairs into
    // single MHP passes (reassociates — within 1e-6, not bit-exact).
    let cnn_program = cnn_raw.optimize(OptLevel::Standard)?;
    let bert_program = bert_raw.optimize(OptLevel::Standard)?;
    println!("\noptimizer pass stats (PassStats, ops removed per pass):");
    for (raw, level) in [
        (&cnn_raw, OptLevel::Standard),
        (&cnn_raw, OptLevel::Fusion),
        (&bert_raw, OptLevel::Standard),
    ] {
        let optimized = raw.optimize(level)?;
        let report = optimized.opt_report().expect("optimize records a report");
        let passes: Vec<String> = report
            .passes
            .iter()
            .map(|p| format!("{}={}", p.pass, p.removed))
            .collect();
        println!(
            "  {:<12} [{:<8}] {:>2} -> {:>2} ops ({:>4.1}% cut): {}",
            raw.name(),
            level.label(),
            report.ops_before,
            report.ops_after,
            report.ops_removed_fraction() * 100.0,
            passes.join(", ")
        );
    }
    // The >=10% op cut needs the opt-in Fusion level; the bit-identical
    // Standard level that serving runs contributes the 4% elision.
    let fused = cnn_raw.optimize(OptLevel::Fusion)?;
    assert!(
        fused.opt_report().expect("report").ops_removed_fraction() >= 0.10,
        "fusion level must cut >=10% of the CNN's ops"
    );
    assert!(fused.modeled_macs() < cnn_raw.modeled_macs());

    // Repeated wrapper calls hit the model's CompileCache: no re-emit,
    // no weight copies — just an Arc clone per request.
    let warm = rng.randn(&[1, 8, 8], 1.0);
    let _ = cnn.logits(&warm, &mode);
    let hits_before = cnn.compile_cache().hits();
    let _ = cnn.logits(&warm, &mode);
    assert_eq!(cnn.compile_cache().hits(), hits_before + 1);
    println!(
        "\ncompile cache: {} hit(s), {} miss(es) after repeated logits calls",
        cnn.compile_cache().hits(),
        cnn.compile_cache().misses()
    );

    // ---- 2. concurrent programs through one BatchEngine -------------
    let images: Vec<Tensor> = (0..4).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();
    let mut engine = BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25)?;
    for x in &images {
        engine.submit_program(cnn_program.clone(), vec![x.clone()])?;
    }
    let run = engine.run()?;
    for (outcome, x) in run.outcomes.iter().zip(&images) {
        assert_eq!(
            outcome.output.as_slice(),
            cnn.logits(x, &mode).as_slice(),
            "batched program output must be bit-identical to direct inference"
        );
    }
    let coalesced = run
        .program_stages
        .iter()
        .filter(|s| s.groups < s.ops)
        .count();
    println!(
        "\n4 concurrent CNN programs, {} stages: {} stages coalesced, \
         {} gemm + {} nonlinear kernel groups total, {:.2}x batching speedup",
        run.program_stages.len(),
        coalesced,
        run.report.gemm_groups,
        run.report.nonlinear_groups,
        run.report.batching_speedup()
    );
    assert!(
        coalesced >= 2,
        "coalescing must reach beyond the classifier"
    );
    println!("  per-stage kernel groups (ops -> groups):");
    for s in run.program_stages.iter().filter(|s| s.groups < s.ops) {
        println!(
            "    stage {:>2}: {} ops -> {} group(s) ({})",
            s.stage,
            s.ops,
            s.groups,
            if s.gemm_groups > 0 { "gemm" } else { "ipf+mhp" }
        );
    }

    // ---- 3. whole networks through the async shard pool -------------
    let pool = ServeEngine::start(
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 16 })
            .with_routing(RoutePolicy::WeightAffinity)
            .start_paused(),
    )?;
    let mut tickets: Vec<Ticket> = Vec::new();
    for x in &images {
        tickets.push(pool.submit_program(cnn_program.clone(), vec![x.clone()])?);
    }
    for _ in 0..2 {
        tickets.push(pool.submit_program(bert_program.clone(), vec![TinyBert::ids_tensor(&seq)])?);
    }
    pool.resume();
    let want_bert = bert.predict(&seq, &mode);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let served = ticket.wait()?;
        if i < images.len() {
            assert_eq!(
                served.output.as_slice(),
                cnn.logits(&images[i], &mode).as_slice()
            );
        } else {
            assert_eq!(served.output.as_slice(), want_bert.as_slice());
        }
        assert!(
            !served.op_stats.is_empty(),
            "program tickets carry op stats"
        );
    }
    let summary = pool.finish()?;
    println!(
        "\nserve pool: {} whole-network requests over {} shards, \
         {} gemm groups, {:.2}x modeled speedup, {} expired",
        summary.report.requests,
        summary.shards.len(),
        summary.report.gemm_groups,
        summary.modeled_speedup(),
        summary.expired
    );
    assert_eq!(summary.report.requests, 6);
    println!("\nall program outputs bit-identical to direct inference ✓");
    Ok(())
}
