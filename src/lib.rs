//! ONE-SA reproduction — umbrella crate.
//!
//! This package ties the workspace together: it re-exports every
//! sub-crate under one roof and owns the cross-crate integration tests
//! (`tests/integration_*.rs`) and the runnable examples
//! (`cargo run --example quickstart`).
//!
//! The crates, bottom-up:
//!
//! * [`tensor`] — dense `f32` tensors, reference GEMM/MHP kernels,
//!   im2col, INT16 quantization, Q-format fixed point, PCG-32 RNG;
//! * [`cpwl`] — capped piecewise linearization tables (§III);
//! * [`sim`] — the cycle-level and analytic array models (§III–IV);
//! * [`plan`] — the operator-graph `Program` IR: whole networks as
//!   validated, costed, stage-schedulable requests;
//! * [`resources`] — Virtex-7 resource/power models (Tables I–II, Fig 9–10);
//! * [`data`] — deterministic synthetic datasets for the accuracy study;
//! * [`nn`] — layers, models, training and CPWL inference (Table III);
//! * [`baselines`] — published baseline processors (Table IV);
//! * [`core`] — the [`OneSa`] engine lowering whole workloads;
//! * `bench` (dev) — table/figure report generators and Criterion benches.
//!
//! # Example
//!
//! ```
//! use onesa::{OneSa, ArrayConfig};
//!
//! let engine = OneSa::new(ArrayConfig::new(8, 16));
//! let report = engine.run_workload(&onesa::nn::workloads::bert_base(32));
//! assert!(report.latency_ms() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use onesa_baselines as baselines;
pub use onesa_core as core;
pub use onesa_cpwl as cpwl;
pub use onesa_data as data;
pub use onesa_nn as nn;
pub use onesa_plan as plan;
pub use onesa_resources as resources;
pub use onesa_sim as sim;
pub use onesa_tensor as tensor;

pub use onesa_core::OneSa;
pub use onesa_sim::ArrayConfig;
