//! Shard worker process of the cross-host serving backend.
//!
//! Spawned by `onesa_core::serve::ShardBackend::Process`: connects back
//! to the host over the socket named by `--connect`, handshakes, builds
//! the same `BatchEngine` an in-process shard would, and serves windows
//! until the host says Shutdown (or hangs up). All protocol logic lives
//! in `onesa_core::net::worker_main`; this binary is just the process
//! shell around it.

fn main() {
    if let Err(msg) = onesa_core::net::worker_main(std::env::args().skip(1)) {
        eprintln!("onesa-shard-worker: {msg}");
        std::process::exit(2);
    }
}
